"""Tests for the synchronous message-passing engine."""

import pytest

from repro.distributed.engine import NodeContext, Protocol, SynchronousNetwork
from repro.distributed.messages import payload_words
from repro.exceptions import ProtocolError, SimulationLimitError
from repro.graphs.graph import Graph


class SilentHalt(Protocol):
    """Every node halts immediately without speaking."""

    name = "silent"

    def on_round(self, ctx, inbox):
        ctx.halt()
        return None


class PingPong(Protocol):
    """Node 0 pings; neighbors reply; everyone halts after the reply."""

    name = "ping-pong"

    def on_start(self, ctx):
        ctx.state["got"] = []
        if ctx.node == 0:
            return {v: "ping" for v in ctx.neighbors}
        return None

    def on_round(self, ctx, inbox):
        ctx.state["got"].extend(inbox.values())
        if ctx.node == 0:
            if inbox:
                ctx.halt()
            return None
        ctx.halt()
        if inbox:
            return {0: "pong"} if 0 in ctx.neighbors else None
        return None

    def output(self, ctx):
        return list(ctx.state["got"])


class Chatty(Protocol):
    """Never halts: must trip the round limit."""

    name = "chatty"

    def on_round(self, ctx, inbox):
        return None


class BadSender(Protocol):
    """Sends to a non-neighbor: must be rejected."""

    name = "bad-sender"

    def on_start(self, ctx):
        return {999: "boo"}


def star(n: int) -> Graph:
    g = Graph(n)
    for i in range(1, n):
        g.add_edge(0, i, 1.0)
    return g


class TestEngine:
    def test_nodes_sorted(self):
        net = SynchronousNetwork(star(4))
        assert net.nodes == [0, 1, 2, 3]

    def test_adjacency_mapping_topology(self):
        net = SynchronousNetwork({5: {7}, 7: {5}})
        assert net.nodes == [5, 7]

    def test_mapping_rejects_self_loop(self):
        with pytest.raises(ProtocolError):
            SynchronousNetwork({1: {1}})

    def test_silent_halt_one_round(self):
        result = SynchronousNetwork(star(3)).run(SilentHalt())
        assert result.rounds == 1
        assert result.messages == 0

    def test_ping_pong_counts(self):
        result = SynchronousNetwork(star(4)).run(PingPong())
        # start: 3 pings (round 1); round 2: leaves reply 3 pongs;
        # round 3: center digests and halts.
        assert result.messages == 6
        assert result.rounds == 3
        assert sorted(result.outputs[0]) == ["pong", "pong", "pong"]
        assert result.outputs[1] == ["ping"]

    def test_round_limit_enforced(self):
        net = SynchronousNetwork(star(3), max_rounds=5)
        with pytest.raises(SimulationLimitError):
            net.run(Chatty())

    def test_non_neighbor_send_rejected(self):
        with pytest.raises(ProtocolError, match="non-neighbor"):
            SynchronousNetwork(star(3)).run(BadSender())

    def test_rejects_bad_max_rounds(self):
        with pytest.raises(ProtocolError):
            SynchronousNetwork(star(3), max_rounds=0)

    def test_word_accounting(self):
        result = SynchronousNetwork(star(3)).run(PingPong())
        assert result.words >= result.messages  # each payload >= 1 word


class TestCSRValidation:
    """Each CSR rejection names the offending slot (and node pair), so a
    bad topology is debuggable without bisecting the arrays by hand."""

    @staticmethod
    def _net(indptr, indices):
        import numpy as np

        return SynchronousNetwork(
            (np.asarray(indptr, dtype=np.int64),
             np.asarray(indices, dtype=np.int64))
        )

    def test_valid_csr_accepted(self):
        net = self._net([0, 1, 2], [1, 0])
        assert net.nodes == [0, 1]

    def test_self_loop_names_slot(self):
        with pytest.raises(
            ProtocolError, match=r"self-loop at 1 in topology \(CSR slot 2\)"
        ):
            self._net([0, 2, 4], [1, 1, 1, 0])

    def test_unsorted_row_names_first_violation(self):
        # Node 0's row is [2, 1]: descending, so slot 1 breaks order.
        with pytest.raises(
            ProtocolError, match=r"first violation at slot 1 \(node 0 -> 1\)"
        ):
            self._net([0, 2, 3, 4], [2, 1, 0, 0])

    def test_duplicate_neighbor_names_first_violation(self):
        with pytest.raises(
            ProtocolError, match=r"first violation at slot 1 \(node 0 -> 1\)"
        ):
            self._net([0, 2, 4], [1, 1, 0, 0])

    def test_asymmetric_names_unreciprocated_slot(self):
        # 0 -> 1 exists, 1 -> 0 does not.
        with pytest.raises(
            ProtocolError,
            match=r"slot 0 \(0 -> 1\) has no reverse edge",
        ):
            self._net([0, 1, 1], [1])

    def test_out_of_range_neighbor_rejected(self):
        with pytest.raises(ProtocolError, match=r"out of range"):
            self._net([0, 1, 2], [1, 5])

    def test_decreasing_indptr_rejected(self):
        with pytest.raises(ProtocolError, match="non-decreasing"):
            self._net([0, 2, 1, 3], [1, 0, 0])


class TestPayloadWords:
    def test_atoms(self):
        assert payload_words(5) == 1
        assert payload_words(2.5) == 1
        assert payload_words(None) == 1
        assert payload_words(True) == 1

    def test_string_by_words(self):
        assert payload_words("abcdefgh") == 1
        assert payload_words("abcdefghi") == 2

    def test_containers(self):
        assert payload_words([1, 2, 3]) == 4
        assert payload_words({"a": 1}) == 3
        assert payload_words(frozenset({1})) == 2

    def test_nested(self):
        assert payload_words([[1], [2]]) == 5


class TestNodeContext:
    def test_halt_flag(self):
        ctx = NodeContext(node=0, neighbors=(1,))
        assert not ctx.halted
        ctx.halt()
        assert ctx.halted
