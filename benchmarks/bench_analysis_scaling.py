"""Scaling benchmarks for the array-native analysis engine.

Tracks ``measure_stretch`` / ``assess`` wall time at n in
{1000, 5000, 20000} on constant-density UDGs with Gabriel-graph spanners
(ISSUE 2 acceptance: the n=5000 ``assess`` must beat the pre-PR scalar
path by >= 10x).  The scalar reference below reproduces the pre-PR
semantics exactly -- scipy Dijkstra rows re-materialized into per-vertex
Python dicts, per-edge Python aggregation, Kruskal MST, dict power cost
-- so the printed speedup is measured against the real former hot path,
not a strawman.

Run with ``-s`` to see the recorded speedup table::

    PYTHONPATH=src python -m pytest benchmarks/bench_analysis_scaling.py -s
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.proximity import gabriel_graph
from repro.geometry.sampling import uniform_points
from repro.graphs.analysis import assess, measure_stretch
from repro.graphs.build import build_udg
from repro.graphs.graph import Graph
from repro.graphs.mst import kruskal_mst

SIZES = (1000, 5000, 20000)


def _instance(n: int):
    points = uniform_points(n, seed=1234 + n, expected_degree=8.0)
    base = build_udg(points)
    return base, gabriel_graph(base, points)


# ----------------------------------------------------------------------
# Pre-PR scalar reference path (dict materialization, Python loops)
# ----------------------------------------------------------------------
def _scalar_distance_rows(spanner: Graph, sources: list[int]):
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    n = spanner.num_vertices
    mat = spanner.csr()
    rows = sp_dijkstra(mat, directed=False, indices=sources)
    rows = rows.reshape(len(sources), n)
    return {
        src: {v: float(rows[i, v]) for v in range(n)}
        for i, src in enumerate(sources)
    }


def _scalar_measure_stretch(base: Graph, spanner: Graph):
    edges = list(base.edges())
    sources = sorted({u for u, _, _ in edges})
    rows = _scalar_distance_rows(spanner, sources)
    max_ratio, total = 0.0, 0.0
    for u, v, w in edges:
        ratio = rows[u].get(v, float("inf")) / w
        total += ratio
        max_ratio = max(max_ratio, ratio)
    return max_ratio, total / len(edges)


def _scalar_power_cost(graph: Graph) -> float:
    total = 0.0
    for u in graph.vertices():
        best = 0.0
        for _, w in graph.neighbor_items(u):
            best = max(best, w)
        total += best
    return total


def _scalar_assess(base: Graph, spanner: Graph):
    max_ratio, mean_ratio = _scalar_measure_stretch(base, spanner)
    mst_w = kruskal_mst(base).total_weight()
    light = spanner.total_weight() / mst_w
    power = _scalar_power_cost(spanner) / _scalar_power_cost(base)
    return max_ratio, mean_ratio, light, power


@pytest.mark.parametrize("n", SIZES)
def test_measure_stretch_scaling(benchmark, n):
    base, spanner = _instance(n)
    report = benchmark(measure_stretch, base, spanner)
    assert np.isfinite(report.max_stretch)
    assert report.num_edges_checked == base.num_edges


@pytest.mark.parametrize("n", SIZES)
def test_assess_scaling(benchmark, n):
    base, spanner = _instance(n)
    quality = benchmark(assess, base, spanner)
    assert quality.stretch >= 1.0
    assert quality.lightness >= 1.0


def test_assess_speedup_vs_scalar_reference(benchmark):
    """Acceptance record: array ``assess`` >= 10x the pre-PR scalar path
    at n=5000 (scalar measured once, array under the benchmark clock)."""
    n = 5000
    base, spanner = _instance(n)

    start = time.perf_counter()
    s_max, s_mean, s_light, s_power = _scalar_assess(base, spanner)
    scalar_s = time.perf_counter() - start

    quality = benchmark(assess, base, spanner)
    start = time.perf_counter()
    assess(base, spanner)
    array_s = time.perf_counter() - start

    assert quality.stretch == pytest.approx(s_max, rel=1e-9)
    assert quality.mean_stretch == pytest.approx(s_mean, rel=1e-9)
    assert quality.lightness == pytest.approx(s_light, rel=1e-9)
    assert quality.power_cost_ratio == pytest.approx(s_power, rel=1e-9)

    speedup = scalar_s / array_s
    print(
        f"\nassess n={n}: scalar {scalar_s:.2f}s, array {array_s:.3f}s, "
        f"speedup {speedup:.1f}x"
    )
    assert speedup >= 10.0, (
        f"array assess only {speedup:.1f}x faster than the scalar path"
    )
