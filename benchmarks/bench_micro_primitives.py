"""Micro-benchmarks of the substrate primitives.

These are conventional pytest-benchmark measurements (many rounds) of the
hot inner operations the spanner algorithms are built from; they catch
performance regressions in the substrate independent of the experiment
tables.
"""

from __future__ import annotations

import pytest

from repro.core.bins import EdgeBinning
from repro.core.cover import build_cluster_cover
from repro.core.seq_greedy import seq_greedy
from repro.distributed.mis import run_luby_mis
from repro.geometry.sampling import uniform_points
from repro.graphs.build import build_udg
from repro.graphs.mst import kruskal_mst
from repro.graphs.paths import dijkstra


@pytest.fixture(scope="module")
def deployment():
    points = uniform_points(300, seed=999)
    return points, build_udg(points)


def test_udg_construction(benchmark):
    points = uniform_points(300, seed=999)
    graph = benchmark(lambda: build_udg(points))
    assert graph.num_edges > 0


def test_dijkstra_full(benchmark, deployment):
    _, graph = deployment
    dist = benchmark(lambda: dijkstra(graph, 0))
    assert len(dist) >= 1


def test_dijkstra_cutoff(benchmark, deployment):
    _, graph = deployment
    dist = benchmark(lambda: dijkstra(graph, 0, cutoff=1.0))
    assert 0 in dist


def test_kruskal_mst(benchmark, deployment):
    _, graph = deployment
    mst = benchmark(lambda: kruskal_mst(graph))
    assert mst.num_edges <= graph.num_vertices - 1


def test_cluster_cover(benchmark, deployment):
    _, graph = deployment
    cover = benchmark(lambda: build_cluster_cover(graph, 0.5))
    assert cover.num_clusters >= 1


def test_edge_binning(benchmark, deployment):
    _, graph = deployment
    binning = EdgeBinning(1.05, 1.0, graph.num_vertices)
    edges = list(graph.edges())
    bins = benchmark(lambda: binning.assign(edges))
    assert sum(len(v) for v in bins.values()) == len(edges)


def test_seq_greedy_small(benchmark):
    points = uniform_points(120, seed=998)
    graph = build_udg(points)
    spanner = benchmark.pedantic(
        lambda: seq_greedy(graph, 1.5), rounds=3, iterations=1
    )
    assert spanner.num_edges > 0


def test_luby_mis_protocol(benchmark):
    import numpy as np

    rng = np.random.default_rng(12)
    adj: dict[int, set[int]] = {i: set() for i in range(150)}
    for _ in range(600):
        a, b = int(rng.integers(150)), int(rng.integers(150))
        if a != b:
            adj[a].add(b)
            adj[b].add(a)
    run = benchmark.pedantic(
        lambda: run_luby_mis(adj, seed=4), rounds=3, iterations=1
    )
    assert run.independent_set
