"""Legacy setup shim: lets ``pip install -e .`` work without the ``wheel``
package (this offline environment lacks it, so PEP 660 editable builds
fail).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
