"""E2 bench: regenerate the Theorem 11 degree-vs-n table."""


def test_e2_degree_table(run_experiment):
    result = run_experiment("E2")
    degrees = [row["spanner_max_deg"] for row in result.rows]
    assert max(degrees) <= 10
