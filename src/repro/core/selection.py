"""Query-edge selection (Section 2.2.2, equation (1)).

Every candidate edge of bin ``E_i`` has its endpoints in *different*
clusters (the cover radius ``delta*W_{i-1}`` is smaller than every edge in
the bin).  For each unordered cluster pair ``(C_a, C_b)`` exactly one
query edge is selected from ``E_i[C_a, C_b]``: the edge ``{x, y}``
(``x in C_a``, ``y in C_b``) minimizing

    ``t*|xy| - sp_{G'}(a, x) - sp_{G'}(b, y)``        (1)

If the selected edge ends up with a t-spanner path, inequality chains in
Theorem 10's proof guarantee t-spanner paths for every other edge of the
pair, so one query per cluster pair suffices.  Lemma 4 bounds the number
of selected edges incident on any cluster by a constant.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import GraphError
from .cover import ClusterCover

__all__ = ["QuerySelection", "select_query_edges"]


@dataclass(frozen=True)
class QuerySelection:
    """Outcome of query-edge selection for one phase.

    Attributes
    ----------
    queries:
        ``(a, b) -> (x, y, length)`` with ``a < b`` cluster centers,
        ``x in C_a``, ``y in C_b``: the unique query edge per cluster pair.
    num_candidates:
        Candidate edges examined.
    max_queries_per_cluster:
        Largest number of selected query edges touching one cluster --
        the quantity Lemma 4 bounds by ``O(t^d ((4*delta + r)/delta)^d)``.
    """

    queries: dict[tuple[int, int], tuple[int, int, float]]
    num_candidates: int
    max_queries_per_cluster: int

    def edges(self) -> list[tuple[int, int, float]]:
        """The selected query edges in deterministic order."""
        return [self.queries[key] for key in sorted(self.queries)]


def select_query_edges(
    candidates: list[tuple[int, int, float]],
    cover: ClusterCover,
    t: float,
) -> QuerySelection:
    """Pick the minimizer of equation (1) for each cluster pair.

    Parameters
    ----------
    candidates:
        Candidate (non-covered) edges ``(u, v, length)`` of the current
        bin.
    cover:
        The phase's cluster cover; every candidate endpoint must be
        covered, and no candidate may have both endpoints in one cluster.
    t:
        Stretch parameter of equation (1).

    Raises
    ------
    GraphError
        If a candidate has both endpoints in the same cluster, which
        would mean the cover radius does not match the bin (a violation
        of the ``delta < 1`` invariant from Section 2.2.2).
    """
    if t < 1.0:
        raise GraphError(f"t must be >= 1, got {t}")
    best: dict[tuple[int, int], tuple[float, int, int, float]] = {}
    for u, v, length in candidates:
        a = cover.center_of(u)
        b = cover.center_of(v)
        if a == b:
            raise GraphError(
                f"candidate edge ({u}, {v}) has both endpoints in cluster "
                f"{a}; cover radius {cover.radius:.6g} is too large for "
                f"this bin (edge length {length:.6g})"
            )
        # Normalize the pair key and keep (x, y) aligned so x in C_a.
        if a > b:
            a, b, u, v = b, a, v, u
        score = (
            t * length
            - cover.distance_to_center(u)
            - cover.distance_to_center(v)
        )
        key = (a, b)
        incumbent = best.get(key)
        # Deterministic tie-break on (score, x, y).
        entry = (score, u, v, length)
        if incumbent is None or entry < incumbent:
            best[key] = entry
    queries = {key: (u, v, w) for key, (_, u, v, w) in best.items()}
    per_cluster: dict[int, int] = {}
    for a, b in queries:
        per_cluster[a] = per_cluster.get(a, 0) + 1
        per_cluster[b] = per_cluster.get(b, 0) + 1
    return QuerySelection(
        queries=queries,
        num_candidates=len(candidates),
        max_queries_per_cluster=max(per_cluster.values(), default=0),
    )
