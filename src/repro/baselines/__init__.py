"""Topology-control baselines for the E5 comparison.

Each baseline is a function ``(base_graph, points, ...) -> Graph``; the
registry maps the names used in experiment tables to ready-to-call
constructors with the conventional parameters.
"""

from typing import Callable

from ..geometry.points import PointSet
from ..graphs.graph import Graph
from ..graphs.mst import kruskal_mst
from .proximity import gabriel_graph, relative_neighborhood_graph
from .xtc import xtc_graph
from .yao import theta_graph, yao_graph, yao_stretch_bound
from .yao_gg import yao_gabriel_graph

__all__ = [
    "yao_graph",
    "theta_graph",
    "yao_stretch_bound",
    "gabriel_graph",
    "relative_neighborhood_graph",
    "xtc_graph",
    "yao_gabriel_graph",
    "baseline_registry",
]


def baseline_registry() -> dict[str, Callable[[Graph, PointSet], Graph]]:
    """Named baseline constructors with conventional parameters.

    Keys are the row labels of the E5 comparison table.  All baselines
    take ``(base, points)`` and return a subgraph topology.
    """
    return {
        "UDG (input)": lambda base, points: base.copy(),
        "MST": lambda base, points: kruskal_mst(base),
        "Gabriel": gabriel_graph,
        "RNG": relative_neighborhood_graph,
        "XTC": lambda base, points: xtc_graph(base),
        "Yao k=8": lambda base, points: yao_graph(base, points, 8),
        "Theta k=8": lambda base, points: theta_graph(base, points, 8),
        "YaoGG k=9 ([15] stand-in)": lambda base, points: yao_gabriel_graph(
            base, points, 9
        ),
    }
