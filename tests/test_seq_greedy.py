"""Tests for SEQ-GREEDY (the classical greedy spanner)."""

import numpy as np
import pytest

from repro.core.seq_greedy import GreedyStats, greedy_spanner_of_clique, seq_greedy
from repro.exceptions import GraphError
from repro.geometry.points import PointSet
from repro.graphs.analysis import lightness, measure_stretch
from repro.graphs.graph import Graph


def complete_euclidean(points: PointSet) -> Graph:
    g = Graph(len(points))
    for u in range(len(points)):
        for v in range(u + 1, len(points)):
            g.add_edge(u, v, points.distance(u, v))
    return g


class TestSeqGreedy:
    def test_rejects_t_below_one(self):
        with pytest.raises(GraphError):
            seq_greedy(Graph(2), 0.5)

    def test_t_one_keeps_shortest_paths_exact(self):
        """With t=1 the spanner preserves all distances exactly."""
        rng = np.random.default_rng(0)
        points = PointSet(rng.uniform(0, 2, size=(12, 2)))
        g = complete_euclidean(points)
        spanner = seq_greedy(g, 1.0)
        assert measure_stretch(g, spanner).max_stretch <= 1.0 + 1e-9

    @pytest.mark.parametrize("t", [1.1, 1.5, 2.0, 3.0])
    def test_output_is_t_spanner(self, t):
        rng = np.random.default_rng(3)
        points = PointSet(rng.uniform(0, 3, size=(25, 2)))
        g = complete_euclidean(points)
        spanner = seq_greedy(g, t)
        assert measure_stretch(g, spanner).max_stretch <= t * (1 + 1e-9)

    def test_larger_t_gives_sparser_output(self):
        rng = np.random.default_rng(4)
        points = PointSet(rng.uniform(0, 3, size=(30, 2)))
        g = complete_euclidean(points)
        assert seq_greedy(g, 2.0).num_edges <= seq_greedy(g, 1.2).num_edges

    def test_constant_degree_on_complete_graph(self):
        """The classical guarantee: greedy spanners of Euclidean cliques
        have O(1) degree (constant depends on t)."""
        rng = np.random.default_rng(5)
        points = PointSet(rng.uniform(0, 4, size=(60, 2)))
        spanner = seq_greedy(complete_euclidean(points), 1.5)
        assert spanner.max_degree() <= 12

    def test_lightweight_on_complete_graph(self):
        rng = np.random.default_rng(6)
        points = PointSet(rng.uniform(0, 4, size=(60, 2)))
        g = complete_euclidean(points)
        assert lightness(g, seq_greedy(g, 1.5)) <= 4.0

    def test_tree_input_returned_whole(self):
        """A tree has no redundant edges: greedy keeps everything."""
        g = Graph(5)
        for i in range(4):
            g.add_edge(i, i + 1, 1.0 + 0.1 * i)
        spanner = seq_greedy(g, 1.5)
        assert spanner.num_edges == 4

    def test_stats_populated(self):
        rng = np.random.default_rng(7)
        points = PointSet(rng.uniform(0, 2, size=(10, 2)))
        g = complete_euclidean(points)
        stats = GreedyStats()
        spanner = seq_greedy(g, 1.5, stats=stats)
        assert stats.num_edges_examined == g.num_edges
        assert stats.num_queries == g.num_edges
        assert stats.num_edges_added == spanner.num_edges
        assert stats.num_settled >= stats.num_queries  # source always settled

    def test_deterministic(self):
        rng = np.random.default_rng(8)
        points = PointSet(rng.uniform(0, 2, size=(15, 2)))
        g = complete_euclidean(points)
        assert seq_greedy(g, 1.4) == seq_greedy(g, 1.4)

    def test_empty_graph(self):
        assert seq_greedy(Graph(0), 1.5).num_edges == 0
        assert seq_greedy(Graph(5), 1.5).num_edges == 0


class TestGreedySpannerOfClique:
    def test_spans_members_only(self):
        points = PointSet([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [5.0, 5.0]])
        spanner = greedy_spanner_of_clique(
            [0, 1, 2], 4, points.distance, 1.5
        )
        assert spanner.num_vertices == 4
        assert spanner.degree(3) == 0
        # members connected
        assert spanner.has_edge(0, 1) and spanner.has_edge(1, 2)

    def test_collinear_chain_skips_long_edge(self):
        points = PointSet([[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]])
        spanner = greedy_spanner_of_clique(
            [0, 1, 2], 3, points.distance, 1.5
        )
        # 0->2 via 1 has stretch exactly 1: direct edge unnecessary.
        assert not spanner.has_edge(0, 2)

    def test_single_member(self):
        points = PointSet([[0.0, 0.0]])
        spanner = greedy_spanner_of_clique([0], 1, points.distance, 1.5)
        assert spanner.num_edges == 0
