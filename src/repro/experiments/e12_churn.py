"""E12 -- dynamic maintenance: quality and cost vs churn rate.

Drives a :class:`repro.core.MaintenanceSession` with the registered
mobility samplers (random waypoint, convoy, flocking) at increasing
churn rates and measures what local repair costs and what it gives up
relative to the static pipeline.  Shape:

* after every churn epoch the maintained spanner still satisfies the
  tested stretch bound over the maintained base graph (the invariant
  :meth:`MaintenanceSession.verify` certifies);
* the **zero-churn row is pinned bit-equal to the static build** --
  same base edge table, same spanner edge table, float weights
  included -- so the dynamic engine provably adds nothing when nothing
  moves;
* per-event repair cost (milliseconds) and the amortized speedup over
  a from-scratch rebuild are recorded per row, alongside the spanner
  size ratio against the rebuilt reference (quality drift).

``repro sweep --experiments E12`` re-verifies the claim across the
deployment grid (the ``scenarios``/``sizes`` kwargs plug into the
sweep driver's cell overrides).
"""

from __future__ import annotations

import time

from ..core.maintenance import MaintenanceSession
from .runner import ExperimentResult, register, stopwatch
from .workloads import make_mobility, make_workload, mobility_names

__all__ = ["run"]


@register("E12")
def run(
    quick: bool = False,
    seed: int = 0,
    *,
    scenarios: tuple[str, ...] | None = None,
    sizes: tuple[int, ...] | None = None,
    churn_rates: tuple[float, ...] | None = None,
    mobility: tuple[str, ...] | None = None,
    epochs: int | None = None,
) -> ExperimentResult:
    """Execute E12.

    ``scenarios``/``sizes`` override the workload cell (the sweep
    driver passes one cell at a time); ``churn_rates`` is the fraction
    of nodes moving per epoch (0.0 = the pinned static anchor);
    ``mobility`` restricts the mobility models driving the churn.
    """
    n = sizes[0] if sizes else (48 if quick else 200)
    scenario = scenarios[0] if scenarios else "uniform"
    rates = tuple(churn_rates) if churn_rates else (
        (0.0, 0.02, 0.1) if quick else (0.0, 0.01, 0.02, 0.05, 0.1)
    )
    models = tuple(mobility) if mobility else (
        ("random_waypoint",) if quick else mobility_names()
    )
    num_epochs = epochs if epochs is not None else (3 if quick else 6)
    eps = 0.5

    workload = make_workload(scenario, n, seed=seed + 12)
    coords = workload.points.coords

    # One static-pipeline cost anchor per cell: what a from-scratch
    # rebuild of this workload's spanner costs (the thing every event
    # would pay without the maintenance engine).
    t0 = time.perf_counter()
    probe = MaintenanceSession(workload.points, eps)
    rebuild_s = time.perf_counter() - t0

    result = ExperimentResult(
        experiment="E12",
        claim=(
            "incremental maintenance: local repair keeps the stretch "
            "bound under mobility churn; zero churn is bit-equal to "
            "the static build"
        ),
        notes=(
            "mobility samplers -> MaintenanceSession.move; speedup = "
            "rebuild cost / mean per-event repair cost"
        ),
    )
    del probe
    for model_name in models:
        for rate in rates:
            row = {
                "scenario": scenario,
                "n": n,
                "mobility": model_name,
                "churn": rate,
            }
            ok = True
            with stopwatch(row):
                session = MaintenanceSession(workload.points, eps)
                if rate > 0.0:
                    model = make_mobility(
                        model_name, coords, seed=seed + 34, speed=0.25
                    )
                    for _ in range(num_epochs):
                        for node, pos in model.step(rate):
                            session.move(node, pos)
                check = session.verify()
                stats = session.stats()
                _, ref = session.rebuild_reference()
            ok &= check["ok"]
            row.update(
                events=stats["events"],
                dirty_balls=stats["dirty_balls"],
                repaired_edges=stats["repaired_edges"],
                resyncs=stats["resyncs"],
                event_ms=round(1e3 * stats["mean_wall_s"], 3),
                rebuild_ms=round(1e3 * rebuild_s, 3),
                speedup=round(
                    rebuild_s / max(stats["mean_wall_s"], 1e-9), 2
                )
                if stats["events"]
                else None,
                spanner_edges=session.spanner.num_edges,
                edges_ratio=round(
                    session.spanner.num_edges / max(ref.spanner.num_edges, 1),
                    4,
                ),
                max_degree=session.spanner.max_degree(),
                stretch_ok=check["ok"],
            )
            if rate == 0.0:
                # The anchor row: an event-free session must be the
                # static pipeline, bit for bit.
                static_equal = sorted(session.spanner.edges()) == sorted(
                    ref.spanner.edges()
                ) and sorted(session.graph.edges()) == sorted(
                    workload.graph.edges()
                )
                row["static_equal"] = static_equal
                ok &= static_equal
            result.rows.append(row)
            result.passed &= ok
    return result
