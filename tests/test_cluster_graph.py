"""Tests for the Das--Narasimhan cluster graph H (Section 2.2.3)."""

import math

import pytest

from repro.core.bins import EdgeBinning
from repro.core.cluster_graph import build_cluster_graph
from repro.core.cover import build_cluster_cover
from repro.exceptions import GraphError
from repro.graphs.graph import Graph
from repro.graphs.paths import dijkstra
from repro.params import SpannerParams


def path_graph(n: int, w: float) -> Graph:
    g = Graph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, w)
    return g


class TestBuildClusterGraph:
    def test_intra_edges_weighted_by_center_distance(self):
        g = path_graph(6, 0.1)
        cover = build_cluster_cover(g, 0.2)  # clusters of 3 consecutive
        h = build_cluster_graph(g, cover, w_prev=1.0, delta=0.2)
        for v, center in cover.assignment.items():
            if v != center:
                assert h.graph.weight(center, v) == pytest.approx(
                    cover.center_distance[v]
                )

    def test_inter_edge_condition_i(self):
        """Centers within W_prev in G' are joined."""
        g = path_graph(4, 0.3)
        cover = build_cluster_cover(g, 0.0)  # all singleton clusters
        h = build_cluster_graph(g, cover, w_prev=0.35, delta=0.1)
        assert h.graph.has_edge(0, 1)  # sp = 0.3 <= 0.35
        assert not h.graph.has_edge(0, 2)  # sp = 0.6 > 0.35, no crossing...

    def test_inter_edge_condition_ii_crossing(self):
        """A spanner edge crossing two clusters joins their centers even
        when the centers are farther than W_prev."""
        # Two 3-chains of tiny edges joined by one 0.5 edge.
        g = Graph(6)
        for i in (0, 1):
            g.add_edge(i, i + 1, 0.05)
        for i in (3, 4):
            g.add_edge(i, i + 1, 0.05)
        g.add_edge(2, 3, 0.5)
        cover = build_cluster_cover(g, 0.1)
        a, b = cover.center_of(2), cover.center_of(3)
        assert a != b
        h = build_cluster_graph(g, cover, w_prev=0.2, delta=0.5)
        assert h.graph.has_edge(a, b)
        # weight is the true sp between centers
        expected = dijkstra(g, a, targets={b})[b]
        assert h.graph.weight(a, b) == pytest.approx(expected)

    def test_rejects_bad_w_prev(self):
        g = path_graph(3, 0.1)
        cover = build_cluster_cover(g, 0.2)
        with pytest.raises(GraphError):
            build_cluster_graph(g, cover, w_prev=0.0, delta=0.1)

    def test_rejects_bad_delta(self):
        g = path_graph(3, 0.1)
        cover = build_cluster_cover(g, 0.2)
        with pytest.raises(GraphError):
            build_cluster_graph(g, cover, w_prev=1.0, delta=0.0)

    def test_counts_reported(self):
        g = path_graph(6, 0.1)
        cover = build_cluster_cover(g, 0.2)
        h = build_cluster_graph(g, cover, w_prev=1.0, delta=0.2)
        assert h.num_intra_edges == 6 - cover.num_clusters
        assert h.num_inter_edges >= 1

    def test_distance_queries(self):
        g = path_graph(6, 0.1)
        cover = build_cluster_cover(g, 0.2)
        h = build_cluster_graph(g, cover, w_prev=1.0, delta=0.2)
        assert h.distance(0, 0) == 0.0
        assert h.distance(0, 5) < float("inf")
        assert h.distance(0, 5, cutoff=0.01) == float("inf")


class TestLemmaInvariants:
    """Lemmas 5, 7 verified on real phase snapshots."""

    @pytest.fixture(scope="class")
    def phase_setup(self, medium_build, medium_udg):
        params = medium_build.params
        binning = EdgeBinning.for_params(params, medium_udg.num_vertices)
        executed = [p.index for p in medium_build.phases if p.index >= 1]
        phase = executed[2 * len(executed) // 3]
        partial = Graph(medium_udg.num_vertices)
        for u, v, w in medium_build.spanner.edges():
            if binning.bin_of(w) < phase:
                partial.add_edge(u, v, w)
        w_prev = binning.boundary(phase - 1)
        cover = build_cluster_cover(partial, params.delta * w_prev)
        h = build_cluster_graph(partial, cover, w_prev, params.delta)
        return params, partial, cover, h, w_prev

    def test_lemma5_inter_edge_weights(self, phase_setup):
        """Inter-cluster edges between phase-1+ material satisfy
        sp <= (2*delta + 1) * W_prev."""
        params, partial, cover, h, w_prev = phase_setup
        centers = set(cover.centers)
        bound = (2.0 * params.delta + 1.0) * w_prev
        long_phase0 = partial.max_edge_weight() > w_prev
        for u, v, w in h.graph.edges():
            if u in centers and v in centers:
                if not long_phase0:
                    assert w <= bound + 1e-12

    def test_h_never_underestimates(self, phase_setup):
        """sp_H(x,y) >= sp_G'(x,y): H paths are detours, never shortcuts."""
        params, partial, cover, h, w_prev = phase_setup
        import numpy as np

        rng = np.random.default_rng(1)
        verts = list(partial.vertices())
        for _ in range(15):
            x = int(rng.choice(verts))
            row_h = dijkstra(h.graph, x, cutoff=3 * w_prev)
            row_g = dijkstra(partial, x)
            for y, dh in row_h.items():
                assert dh >= row_g.get(y, float("inf")) - 1e-9

    def test_lemma7_upper_ratio(self, phase_setup):
        """sp_H <= (1+6d)/(1-2d) * sp_G' for pairs H can see."""
        params, partial, cover, h, w_prev = phase_setup
        ratio = (1.0 + 6.0 * params.delta) / (1.0 - 2.0 * params.delta)
        import numpy as np

        rng = np.random.default_rng(2)
        verts = list(partial.vertices())
        checked = 0
        for _ in range(20):
            x = int(rng.choice(verts))
            row_g = dijkstra(partial, x, cutoff=2 * w_prev)
            for y, dg in row_g.items():
                if y == x or dg == 0:
                    continue
                dh = h.distance(x, y, cutoff=ratio * dg * 1.001)
                if not math.isinf(dh):
                    assert dh <= ratio * dg + 1e-9
                    checked += 1
        assert checked > 0

    def test_lemma8_hop_bound(self, phase_setup):
        """Relevant H-paths have O(1) hops: 2 + ceil(t*r/delta)."""
        params, partial, cover, h, w_prev = phase_setup
        from repro.graphs.paths import bfs_hops

        hop_bound = 2 + math.ceil(params.t * params.r / params.delta)
        # Check via weighted/hop joint search: any path of weight
        # <= t*r*W_prev uses at most hop_bound hops.  We verify the
        # necessary condition: every H-edge on such a path has weight
        # > delta*W_prev unless intra (then it is one of <= 2 hops).
        centers = set(cover.centers)
        for u, v, w in h.graph.edges():
            if u in centers and v in centers:
                assert w > params.delta * w_prev - 1e-12
