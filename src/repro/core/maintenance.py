"""Incremental spanner maintenance: local repair under churn.

The paper's scheme is *local* -- coverage, cluster-graph and spanner
decisions depend only on O(1)-hop neighborhoods -- yet a naive pipeline
answers every topology change with a from-scratch rebuild (~2 s at
n=10^4).  :class:`MaintenanceSession` closes that gap: it owns the
built spanner state (base graph, spanner, routing, per-event repair
accounting) and consumes a stream of ``insert(point)`` /
``delete(node)`` / ``move(node, new_pos)`` events, repairing locally
via *dirty-ball invalidation*:

1. the event marks the ball of alive nodes within ``dirty_radius``
   (default ``t + 1``: the query cutoff plus the unit communication
   radius) of every event site -- the only region whose coverage or
   crossing sets the event can affect;
2. the base alpha-UBG is patched incrementally (the two-layer CSR's
   tombstoned deletions make this O(degree) per event, no rebuild);
3. the paper's phases re-run *only on the induced dirty subgraph*:
   cover re-promotion (:func:`build_cluster_cover` restricted to the
   dirty universe), per-bin query selection (equation (1) minimizers),
   and step-iv query re-answering -- the dirty region is small enough
   that exact spanner distances subsume the cluster-graph
   approximation;
4. redundancy verdicts for spanner edges touching the dirty ball are
   re-taken (remove iff a ``t1``-alternative survives), and
5. a certification sweep over base edges within ``dirty_radius + t``
   of the sites re-adds any edge whose ``t``-certificate the repair
   broke.  A certificate path for base edge ``(x, y)`` stays within
   Euclidean ``t`` of ``x``; every spanner edge the repair removed has
   an endpoint within ``dirty_radius`` of a site, so any base edge
   whose certificate could have broken has an endpoint within
   ``dirty_radius + t`` -- the sweep radius.  The invariant after
   every event: **the maintained spanner is a t-spanner of the
   current base graph** (:meth:`MaintenanceSession.verify`).

Repair modes: ``repair="local"`` (the default) runs the dirty-ball
pipeline and is pinned by a tested stretch bound; ``repair="rebuild"``
re-derives the spanner from the incrementally-maintained base graph
after every event and is pinned *bit-equal* to a from-scratch build on
the current point set (the base patching reproduces the batch
builders' distances and gray-zone policy draws exactly: distances use
the same einsum/sqrt kernel and policy draws hash the same global
vertex ids).  ``resync()`` is the escape hatch: rebuild everything
from the coordinates.  When an event dirties more than
``resync_fraction`` of the alive nodes, the local path escalates to a
spanner rebuild on its own.

:func:`events_from_fault_plan` adapts :class:`repro.distributed.faults.
FaultPlan` crash/recover schedules onto delete/insert event streams, so
fault adversaries and mobility models share one schema.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Sequence

import numpy as np

from ..exceptions import GraphError, ParameterError
from ..geometry import GridIndex, PointSet
from ..graphs.build import KeepAllPolicy
from ..graphs.graph import Graph
from ..graphs.paths import dijkstra_distance, pair_distances
from ..params import SpannerParams
from .bins import EdgeBinning
from .cover import build_cluster_cover
from .relaxed_greedy import RelaxedGreedySpanner, SpannerResult
from .selection import select_query_edges

if TYPE_CHECKING:
    from ..distributed.faults import FaultPlan
    from ..routing import RoutingTable

__all__ = [
    "MaintenanceEvent",
    "MaintenanceSession",
    "RepairReport",
    "events_from_fault_plan",
]


@dataclass(frozen=True)
class MaintenanceEvent:
    """One topology-change event.

    ``kind`` is ``"insert"`` (``node=None`` allocates a fresh id;
    ``node=<dead id>`` revives it, reusing its stored position unless
    ``pos`` overrides), ``"delete"`` or ``"move"``.  ``time`` orders
    streams (the fault-plan adapter fills it from crash schedules) and
    is carried into the repair report.
    """

    kind: str
    node: int | None = None
    pos: tuple[float, ...] | None = None
    time: float = 0.0


@dataclass
class RepairReport:
    """Per-event repair accounting."""

    kind: str
    node: int
    time: float = 0.0
    #: Alive nodes inside the invalidated dirty ball(s).
    dirty_nodes: int = 0
    #: Clusters re-promoted on the dirty subgraph (summed over bins).
    dirty_balls: int = 0
    #: Spanner edges the repair added (promotion + certification).
    added_edges: int = 0
    #: Spanner edges the repair removed (redundancy re-verdicts).
    removed_edges: int = 0
    #: ``added + removed``.
    repaired_edges: int = 0
    #: Whether the event escalated to a full spanner rebuild.
    resync: bool = False
    wall_s: float = 0.0


def events_from_fault_plan(
    plan: "FaultPlan",
    nodes: Iterable[int],
    horizon: float,
) -> tuple[MaintenanceEvent, ...]:
    """Map a :class:`FaultPlan`'s crash/recover schedules to events.

    Every node whose counter-hashed crash time lands within
    ``horizon`` yields a ``delete`` event at the crash time; if the
    plan recovers it within the horizon, an ``insert`` revival (same
    id, same stored position) follows.  The stream is sorted by
    ``(time, kind, node)`` with deletes before inserts at equal times,
    and is a pure function of the plan's seed -- the same determinism
    contract as every other draw in the fault tier.
    """
    node_arr = np.asarray(list(nodes), dtype=np.int64)
    crash_at, recover_at = plan.crash_schedules(node_arr)
    events: list[MaintenanceEvent] = []
    for i, node in enumerate(node_arr.tolist()):
        ca = float(crash_at[i])
        if not math.isfinite(ca) or ca > horizon:
            continue
        events.append(MaintenanceEvent("delete", node=node, time=ca))
        ra = float(recover_at[i])
        if math.isfinite(ra) and ra <= horizon:
            events.append(MaintenanceEvent("insert", node=node, time=ra))
    events.sort(key=lambda e: (e.time, 0 if e.kind == "delete" else 1, e.node))
    return tuple(events)


class MaintenanceSession:
    """Owns built spanner state and repairs it locally per event.

    Parameters
    ----------
    points:
        Initial point set (:class:`PointSet` or ``(n, d)`` array).
        Vertex ids are *capacity ids*: deleted nodes keep their id (and
        may be revived by a fault-plan insert); fresh inserts extend
        the id space.
    epsilon:
        Target stretch ``t = 1 + epsilon``.
    alpha:
        Quasi-UBG parameter (pairs closer than ``alpha`` are always
        edges; gray-zone pairs consult ``policy``).
    policy:
        Gray-zone policy; decisions hash global capacity ids, so
        incremental patching reproduces batch-rebuild draws exactly.
    repair:
        ``"local"`` (dirty-ball pipeline, bounded-stretch pin) or
        ``"rebuild"`` (spanner re-derived per event, bit-equal pin).
    dirty_radius:
        Euclidean invalidation radius around event sites; default
        ``t + 1``.
    resync_fraction:
        Local repair escalates to a spanner rebuild when an event
        dirties more than this fraction of the alive nodes.
    """

    def __init__(
        self,
        points: PointSet | np.ndarray,
        epsilon: float,
        *,
        alpha: float = 1.0,
        policy=None,
        repair: str = "local",
        dirty_radius: float | None = None,
        resync_fraction: float = 0.25,
    ) -> None:
        coords = np.asarray(
            points.coords if isinstance(points, PointSet) else points,
            dtype=np.float64,
        )
        if coords.ndim != 2 or coords.shape[0] == 0:
            raise GraphError("points must be a non-empty (n, d) array")
        if repair not in ("local", "rebuild"):
            raise ParameterError(
                f"repair must be 'local' or 'rebuild', got {repair!r}"
            )
        self._coords = coords.copy()
        self._dim = coords.shape[1]
        self._alive = np.ones(coords.shape[0], dtype=bool)
        self._alpha = float(alpha)
        self._policy = policy if policy is not None else KeepAllPolicy()
        self.params = SpannerParams.from_epsilon(
            epsilon, alpha=alpha, dim=self._dim
        )
        self.repair_mode = repair
        self.dirty_radius = (
            float(dirty_radius)
            if dirty_radius is not None
            else self.params.t + 1.0
        )
        self.resync_fraction = float(resync_fraction)
        self._pts_cache: PointSet | None = None
        self._cells: dict[tuple[int, ...], set[int]] = {}
        for idx in range(self._coords.shape[0]):
            self._cell_add(idx)
        self._routing: "RoutingTable | None" = None
        self.reports: list[RepairReport] = []
        self.graph = self._build_base()
        self.build_result: SpannerResult = self._build_result()
        self.spanner = self.build_result.spanner

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------
    @property
    def num_alive(self) -> int:
        """Alive node count."""
        return int(self._alive.sum())

    @property
    def capacity(self) -> int:
        """Size of the id space (alive + dead + inserted)."""
        return self._coords.shape[0]

    def alive_nodes(self) -> np.ndarray:
        """Ids of the alive nodes, ascending."""
        return np.flatnonzero(self._alive)

    def position(self, node: int) -> np.ndarray:
        """Current stored position of ``node`` (alive or dead)."""
        return self._coords[node].copy()

    @property
    def routing(self) -> "RoutingTable":
        """Routing table over the maintained spanner (rebuilt lazily
        after each event; warmed sources re-warm on first use)."""
        if self._routing is None:
            from ..routing import RoutingTable

            self._routing = RoutingTable(self.spanner)
        return self._routing

    def stats(self) -> dict[str, float]:
        """Aggregate repair accounting across all applied events."""
        n = len(self.reports)
        return {
            "events": n,
            "dirty_balls": sum(r.dirty_balls for r in self.reports),
            "repaired_edges": sum(r.repaired_edges for r in self.reports),
            "resyncs": sum(1 for r in self.reports if r.resync),
            "wall_s": sum(r.wall_s for r in self.reports),
            "mean_wall_s": (
                sum(r.wall_s for r in self.reports) / n if n else 0.0
            ),
        }

    # ------------------------------------------------------------------
    # Event API
    # ------------------------------------------------------------------
    def insert(
        self,
        pos: Sequence[float] | None = None,
        *,
        node: int | None = None,
        time: float = 0.0,
    ) -> RepairReport:
        """Insert a fresh point at ``pos``, or revive dead ``node``."""
        return self.apply(MaintenanceEvent("insert", node, _tup(pos), time))

    def delete(self, node: int, *, time: float = 0.0) -> RepairReport:
        """Delete (crash) an alive node; its id stays reserved."""
        return self.apply(MaintenanceEvent("delete", node, None, time))

    def move(
        self, node: int, new_pos: Sequence[float], *, time: float = 0.0
    ) -> RepairReport:
        """Move an alive node to ``new_pos``."""
        return self.apply(MaintenanceEvent("move", node, _tup(new_pos), time))

    def apply(self, event: MaintenanceEvent) -> RepairReport:
        """Apply one event and repair; returns the repair report."""
        t0 = perf_counter()
        kind = event.kind
        if kind == "insert":
            node, sites = self._do_insert(event.node, event.pos)
        elif kind == "delete":
            node, sites = self._do_delete(event.node)
        elif kind == "move":
            node, sites = self._do_move(event.node, event.pos)
        else:
            raise ParameterError(f"unknown event kind {kind!r}")
        report = RepairReport(kind=kind, node=node, time=event.time)
        self._routing = None
        if self.repair_mode == "rebuild":
            self._rebuild_spanner()
            report.resync = True
        else:
            self._repair_local(sites, report)
        report.repaired_edges = report.added_edges + report.removed_edges
        report.wall_s = perf_counter() - t0
        self.reports.append(report)
        return report

    def apply_stream(
        self, events: Iterable[MaintenanceEvent]
    ) -> list[RepairReport]:
        """Apply a sequence of events in order."""
        return [self.apply(event) for event in events]

    def resync(self) -> SpannerResult:
        """Escape hatch: rebuild base graph and spanner from scratch."""
        self.graph = self._build_base()
        self._rebuild_spanner()
        return self.build_result

    def rebuild_reference(self) -> tuple[Graph, SpannerResult]:
        """From-scratch ``(base, spanner)`` on the current point set.

        The pin every equivalence test compares maintained state
        against; the session's own state is untouched.
        """
        base = self._build_base()
        builder = RelaxedGreedySpanner(self.params)
        return base, builder.build(base, self._points().distance)

    def verify(self) -> dict[str, float | bool]:
        """Check the maintained invariant: spanner stretch <= t over
        every alive base edge (and the spanner is a base subgraph)."""
        t = self.params.t
        us, vs, ws = self.graph.edges_arrays()
        if us.size == 0:
            return {"ok": True, "stretch": 1.0, "edges": 0}
        sp = pair_distances(self.spanner, us, vs, cutoff=t)
        ratio = sp / ws
        stretch = float(ratio.max())
        subset = all(
            self.graph.has_edge(u, v) for u, v, _ in self.spanner.edges()
        )
        ok = bool(np.isfinite(stretch)) and stretch <= t * (1.0 + 1e-9)
        return {
            "ok": ok and subset,
            "stretch": stretch,
            "edges": int(us.size),
        }

    # ------------------------------------------------------------------
    # Base-graph patching (incremental alpha-UBG)
    # ------------------------------------------------------------------
    def _points(self) -> PointSet:
        if self._pts_cache is None:
            self._pts_cache = PointSet(self._coords)
        return self._pts_cache

    def _cell_key(self, pos: np.ndarray) -> tuple[int, ...]:
        return tuple(int(math.floor(c)) for c in pos)

    def _cell_add(self, node: int) -> None:
        key = self._cell_key(self._coords[node])
        self._cells.setdefault(key, set()).add(node)

    def _cell_remove(self, node: int) -> None:
        key = self._cell_key(self._coords[node])
        bucket = self._cells.get(key)
        if bucket is not None:
            bucket.discard(node)
            if not bucket:
                del self._cells[key]

    def _near_alive(
        self, pos: np.ndarray, exclude: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Alive nodes within unit distance of ``pos`` (grid cells).

        Uses the same squared-compare + einsum distance kernel as
        :meth:`GridIndex.pairs_within_arrays`, so incremental edge
        weights are bitwise equal to a batch rebuild's.
        """
        base = self._cell_key(pos)
        ids: list[int] = []
        for off in itertools.product((-1, 0, 1), repeat=self._dim):
            bucket = self._cells.get(tuple(c + o for c, o in zip(base, off)))
            if bucket:
                ids.extend(bucket)
        ids = sorted(i for i in ids if i != exclude)
        if not ids:
            empty = np.empty(0, dtype=np.int64)
            return empty, np.empty(0, dtype=np.float64)
        cand = np.asarray(ids, dtype=np.int64)
        diff = self._coords[cand] - np.asarray(pos, dtype=np.float64)
        dist_sq = np.einsum("ij,ij->i", diff, diff)
        keep = dist_sq <= 1.0
        return cand[keep], np.sqrt(dist_sq[keep])

    def _decide_edges(
        self, node: int, cand: np.ndarray, dist: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gray-zone filter for candidate neighbors of ``node``.

        Pairs at distance <= alpha always join; gray pairs consult the
        policy with *global* normalized ids, matching
        :func:`repro.graphs.build.build_qubg` draw for draw.
        """
        if cand.size == 0:
            return cand, dist
        keep = dist <= self._alpha
        gray = ~keep
        if gray.any():
            gu = np.minimum(node, cand[gray])
            gv = np.maximum(node, cand[gray])
            keep[gray] = np.asarray(
                self._policy.decide_batch(
                    self._points(), gu, gv, dist[gray]
                ),
                dtype=bool,
            )
        return cand[keep], dist[keep]

    def _do_insert(
        self, node: int | None, pos: tuple[float, ...] | None
    ) -> tuple[int, list[np.ndarray]]:
        if node is None:
            if pos is None:
                raise GraphError("insert of a fresh node needs a position")
            if len(pos) != self._dim:
                raise GraphError(
                    f"position must have dim {self._dim}, got {len(pos)}"
                )
            node = self._coords.shape[0]
            self._coords = np.vstack([self._coords, [pos]])
            self._alive = np.append(self._alive, False)
            self.graph.add_vertices(1)
            self.spanner.add_vertices(1)
        else:
            if not 0 <= node < self.capacity:
                raise GraphError(f"node {node} out of range")
            if self._alive[node]:
                raise GraphError(f"node {node} is already alive")
            if pos is not None:
                self._coords = self._coords.copy()
                self._coords[node] = pos
        self._pts_cache = None
        self._alive[node] = True
        position = self._coords[node]
        cand, dist = self._near_alive(position, exclude=node)
        nbrs, ws = self._decide_edges(node, cand, dist)
        for v, w in zip(nbrs.tolist(), ws.tolist()):
            self.graph.add_edge(node, v, w)
        self._cell_add(node)
        return node, [position.copy()]

    def _do_delete(self, node: int) -> tuple[int, list[np.ndarray]]:
        if not (0 <= node < self.capacity and self._alive[node]):
            raise GraphError(f"node {node} is not alive")
        site = self._coords[node].copy()
        for v in list(self.spanner.neighbors(node)):
            self.spanner.remove_edge(node, v)
        for v in list(self.graph.neighbors(node)):
            self.graph.remove_edge(node, v)
        self._cell_remove(node)
        self._alive[node] = False
        return node, [site]

    def _do_move(
        self, node: int, pos: tuple[float, ...] | None
    ) -> tuple[int, list[np.ndarray]]:
        if not (0 <= node < self.capacity and self._alive[node]):
            raise GraphError(f"node {node} is not alive")
        if pos is None or len(pos) != self._dim:
            raise GraphError(f"move needs a dim-{self._dim} position")
        old = self._coords[node].copy()
        self._cell_remove(node)
        self._coords = self._coords.copy()
        self._coords[node] = pos
        self._pts_cache = None
        new_pos = self._coords[node]
        cand, dist = self._near_alive(new_pos, exclude=node)
        nbrs, ws = self._decide_edges(node, cand, dist)
        new_edges = dict(zip(nbrs.tolist(), ws.tolist()))
        for v in list(self.graph.neighbors(node)):
            if v not in new_edges:
                self.graph.remove_edge(node, v)
                if self.spanner.has_edge(node, v):
                    self.spanner.remove_edge(node, v)
        for v, w in new_edges.items():
            self.graph.add_edge(node, v, w)
            if self.spanner.has_edge(node, v):
                # Persisting spanner edge: refresh its length.
                self.spanner.add_edge(node, v, w)
        self._cell_add(node)
        return node, [old, new_pos.copy()]

    # ------------------------------------------------------------------
    # Repair
    # ------------------------------------------------------------------
    def _build_base(self) -> Graph:
        """From-scratch alpha-UBG over the capacity id space (dead
        vertices isolated); the reference the incremental patching is
        pinned against."""
        g = Graph(self.capacity)
        alive_idx = np.flatnonzero(self._alive)
        if alive_idx.size < 2:
            return g
        sub = PointSet(self._coords[alive_idx])
        u, v, dist = GridIndex(sub, cell_width=1.0).pairs_within_arrays(1.0)
        if u.size == 0:
            return g
        # subset() relabelling is order-preserving, so mapping back to
        # global ids keeps u < v and the policy draws line up.
        gu = alive_idx[u]
        gv = alive_idx[v]
        keep = dist <= self._alpha
        gray = ~keep
        if gray.any():
            keep[gray] = np.asarray(
                self._policy.decide_batch(
                    self._points(), gu[gray], gv[gray], dist[gray]
                ),
                dtype=bool,
            )
        g.add_weighted_edges_arrays(gu[keep], gv[keep], dist[keep])
        return g

    def _build_result(self) -> SpannerResult:
        builder = RelaxedGreedySpanner(self.params)
        return builder.build(self.graph, self._points().distance)

    def _rebuild_spanner(self) -> None:
        self.build_result = self._build_result()
        self.spanner = self.build_result.spanner

    def _site_distances(self, sites: list[np.ndarray]) -> np.ndarray:
        alive_idx = np.flatnonzero(self._alive)
        coords = self._coords[alive_idx]
        best = np.full(alive_idx.shape, np.inf)
        for site in sites:
            diff = coords - site
            np.minimum(
                best, np.sqrt(np.einsum("ij,ij->i", diff, diff)), out=best
            )
        return best

    def _repair_local(
        self, sites: list[np.ndarray], report: RepairReport
    ) -> None:
        t = self.params.t
        t1 = self.params.t1
        alive_idx = np.flatnonzero(self._alive)
        if alive_idx.size == 0:
            return
        d_site = self._site_distances(sites)
        dirty = alive_idx[d_site <= self.dirty_radius]
        halo = alive_idx[d_site <= self.dirty_radius + t]
        report.dirty_nodes = int(dirty.size)
        if dirty.size > self.resync_fraction * alive_idx.size:
            self._rebuild_spanner()
            report.resync = True
            return
        dirty_set = set(dirty.tolist())
        halo_list = halo.tolist()

        # Phase (i)-(iv) on the dirty subgraph: per-bin cover
        # re-promotion, equation-(1) query selection, and step-iv
        # re-answering with exact spanner distances.
        candidates: list[tuple[int, int, float]] = []
        seen: set[tuple[int, int]] = set()
        for u in dirty.tolist():
            for v, w in self.graph.neighbor_items(u):
                a, b = (u, v) if u < v else (v, u)
                if (a, b) in seen:
                    continue
                seen.add((a, b))
                if not self.spanner.has_edge(a, b):
                    candidates.append((a, b, w))
        if candidates:
            binning = EdgeBinning.for_params(
                self.params, self.graph.num_vertices
            )
            by_bin = binning.assign(candidates)
            for i in sorted(by_bin):
                bin_edges = by_bin[i]
                if i == 0:
                    # Short-edge bin: lengths <= alpha/n, no cover
                    # structure needed -- greedy query per edge.
                    for x, y, length in sorted(
                        bin_edges, key=lambda e: (e[2], e[0], e[1])
                    ):
                        d = dijkstra_distance(
                            self.spanner, x, y, cutoff=t * length
                        )
                        if d > t * length:
                            self.spanner.add_edge(x, y, length)
                            report.added_edges += 1
                    continue
                radius = self.params.delta * binning.boundary(i - 1)
                # The selection only needs candidate *endpoints*
                # covered; restricting the universe to them keeps the
                # re-promotion O(dirty), not O(halo x bins).
                endpoints = sorted(
                    {x for x, _, _ in bin_edges}
                    | {y for _, y, _ in bin_edges}
                )
                # Scalar kernel: the batched one allocates O(n) dense
                # state per call, which would make this O(n x bins).
                cover = build_cluster_cover(
                    self.spanner, radius, vertices=endpoints,
                    kernel="scalar",
                )
                report.dirty_balls += cover.num_clusters
                # delta < 1/2 makes same-cluster candidates impossible
                # for this bin (sp >= |xy| > W_{i-1} > 2*radius); the
                # filter is a cheap guard for degenerate parameters.
                bin_edges = [
                    (x, y, length)
                    for x, y, length in bin_edges
                    if cover.center_of(x) != cover.center_of(y)
                ]
                if not bin_edges:
                    continue
                selection = select_query_edges(bin_edges, cover, t)
                # Step-iv re-answering: scalar cutoff-Dijkstra per
                # query (a handful per bin; the batched pair kernel's
                # per-call setup would dominate at this granularity).
                for x, y, length in selection.edges():
                    d = dijkstra_distance(
                        self.spanner, x, y, cutoff=t * length
                    )
                    if d > t * length:
                        self.spanner.add_edge(x, y, length)
                        report.added_edges += 1

        # Phase (v): redundancy re-verdicts for spanner edges touching
        # the dirty ball -- remove iff a t1-alternative survives.
        prune: list[tuple[float, int, int]] = []
        for u in dirty.tolist():
            for v, w in self.spanner.neighbor_items(u):
                a, b = (u, v) if u < v else (v, u)
                if a in dirty_set and a != u:
                    continue  # counted from its smaller dirty endpoint
                prune.append((w, a, b))
        prune.sort(reverse=True)
        for w, a, b in prune:
            if not self.spanner.has_edge(a, b):
                continue
            self.spanner.remove_edge(a, b)
            d = dijkstra_distance(self.spanner, a, b, cutoff=t1 * w)
            if d <= t1 * w:
                report.removed_edges += 1
            else:
                self.spanner.add_edge(a, b, w)

        # Certification sweep: re-certify every base edge whose
        # t-certificate could have crossed the dirty ball; re-add the
        # violated ones directly.  This is the correctness backstop
        # that keeps the t-spanner invariant unconditional.
        halo_set = set(halo_list)
        cu: list[int] = []
        cv: list[int] = []
        cw: list[float] = []
        for u in halo_list:
            for v, w in self.graph.neighbor_items(u):
                if u < v or v not in halo_set:
                    if not self.spanner.has_edge(u, v):
                        cu.append(u)
                        cv.append(v)
                        cw.append(w)
        if cu:
            us = np.asarray(cu, dtype=np.int64)
            vs = np.asarray(cv, dtype=np.int64)
            ws = np.asarray(cw)
            sp = pair_distances(self.spanner, us, vs, cutoff=t)
            viol = sp > t * ws
            for x, y, length in zip(
                us[viol].tolist(), vs[viol].tolist(), ws[viol].tolist()
            ):
                self.spanner.add_edge(x, y, length)
                report.added_edges += 1


def _tup(pos: Sequence[float] | None) -> tuple[float, ...] | None:
    if pos is None:
        return None
    return tuple(float(c) for c in pos)
