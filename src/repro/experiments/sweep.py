"""Scenario sweep driver: fan a (scenario x n x seed) grid over workers.

Single experiments answer one question about one deployment; the sweep
driver regenerates the whole quality surface in one command.  Every grid
cell builds the sequential relaxed greedy spanner for one concrete
workload, assesses it, and reports one flat row (wall clocks included);
cells execute on the same process-pool pattern as
:mod:`repro.experiments.run_all` and the per-cell rows aggregate into a
single ``results/sweep.json`` artifact (grid provenance + rows +
per-scenario summary) that dashboards can diff run-to-run.

CLI::

    python -m repro sweep --scenarios uniform,ring --sizes 256,1024 \
                          --seeds 0,1 --jobs 4 --output results/sweep.json
"""

from __future__ import annotations

import argparse
import itertools
import json
import sys
from pathlib import Path
from typing import Any, Iterable, Sequence

from ..graphs.analysis import assess
from ..params import SpannerParams
from .runner import format_table, stopwatch
from .workloads import make_workload, scenario_names

__all__ = ["run_cell", "run_sweep", "save_sweep", "main"]


def run_cell(
    scenario: str,
    n: int,
    seed: int,
    *,
    epsilon: float = 0.5,
    alpha: float = 1.0,
) -> dict[str, Any]:
    """Build + assess one grid cell; returns a flat metrics row.

    Module-level (and keyword-light) so process-pool workers can receive
    it by reference.
    """
    from ..core.relaxed_greedy import RelaxedGreedySpanner

    row: dict[str, Any] = {"scenario": scenario, "n": n, "seed": seed}
    workload = make_workload(scenario, n, seed, alpha=alpha)
    params = SpannerParams.from_epsilon(
        epsilon, alpha=alpha, dim=workload.points.dim
    )
    with stopwatch(row, "build_s"):
        result = RelaxedGreedySpanner(params).build(
            workload.graph, workload.points.distance
        )
    with stopwatch(row, "assess_s"):
        quality = assess(workload.graph, result.spanner)
    row.update(
        input_edges=workload.graph.num_edges,
        spanner_edges=quality.edges,
        stretch=round(quality.stretch, 6),
        max_degree=quality.max_degree,
        lightness=round(quality.lightness, 6),
        phases=result.executed_phases,
        passed=bool(quality.stretch <= params.t * (1.0 + 1e-9)),
    )
    return row


def _run_cell_args(args: tuple) -> dict[str, Any]:
    scenario, n, seed, epsilon, alpha = args
    return run_cell(scenario, n, seed, epsilon=epsilon, alpha=alpha)


def run_sweep(
    scenarios: Sequence[str],
    sizes: Sequence[int],
    seeds: Sequence[int],
    *,
    epsilon: float = 0.5,
    alpha: float = 1.0,
    jobs: int = 1,
) -> dict[str, Any]:
    """Execute the full grid and aggregate one report dict.

    Cells run on a process pool when ``jobs > 1``; rows always come back
    in grid order (scenario-major, then n, then seed), so reports are
    diffable run-to-run regardless of completion order.
    """
    grid = [
        (s, int(n), int(seed), float(epsilon), float(alpha))
        for s, n, seed in itertools.product(scenarios, sizes, seeds)
    ]
    if jobs > 1 and len(grid) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(jobs, len(grid))) as pool:
            rows = list(pool.map(_run_cell_args, grid))
    else:
        rows = [_run_cell_args(cell) for cell in grid]

    summary: dict[str, dict[str, Any]] = {}
    for scenario in scenarios:
        cells = [r for r in rows if r["scenario"] == scenario]
        if not cells:
            continue
        summary[scenario] = {
            "cells": len(cells),
            "max_stretch": max(r["stretch"] for r in cells),
            "max_degree": max(r["max_degree"] for r in cells),
            "max_lightness": max(r["lightness"] for r in cells),
            "total_build_s": round(sum(r["build_s"] for r in cells), 6),
            "passed": all(r["passed"] for r in cells),
        }
    return {
        "epsilon": epsilon,
        "alpha": alpha,
        "scenarios": list(scenarios),
        "sizes": [int(n) for n in sizes],
        "seeds": [int(s) for s in seeds],
        "num_cells": len(rows),
        "passed": all(r["passed"] for r in rows),
        "cells": rows,
        "summary": summary,
    }


def save_sweep(report: dict[str, Any], path: str | Path) -> Path:
    """Persist the aggregated sweep report as one JSON artifact."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, default=str) + "\n")
    return path


def _csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenarios", default="",
        help="comma-separated scenario names (default: all registered)",
    )
    parser.add_argument(
        "--sizes", default="128,256", help="comma-separated node counts"
    )
    parser.add_argument(
        "--seeds", default="0", help="comma-separated workload seeds"
    )
    parser.add_argument("--epsilon", type=float, default=0.5)
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = serial)",
    )
    parser.add_argument(
        "--output", default="results/sweep.json",
        help="aggregated report path ('' skips persistence)",
    )
    args = parser.parse_args(argv)

    scenarios = _csv(args.scenarios) or list(scenario_names())
    unknown = set(scenarios) - set(scenario_names())
    if unknown:
        print(
            f"unknown scenario(s): {sorted(unknown)}; "
            f"available: {list(scenario_names())}",
            file=sys.stderr,
        )
        return 2
    sizes = [int(x) for x in _csv(args.sizes)]
    seeds = [int(x) for x in _csv(args.seeds)]
    report = run_sweep(
        scenarios, sizes, seeds,
        epsilon=args.epsilon, alpha=args.alpha, jobs=args.jobs,
    )
    print(format_table(report["cells"]))
    if args.output:
        path = save_sweep(report, args.output)
        print(f"wrote {report['num_cells']} cell(s) to {path}", file=sys.stderr)
    return 0 if report["passed"] else 1


if __name__ == "__main__":
    sys.exit(main())
