"""CSR-native MIS pipeline: dict-free Luby runs and their validation.

The distributed build keeps the proximity graph ``J`` as ``(indptr,
indices)`` arrays end-to-end; these tests pin the array path against the
dict path -- identical ``RunResult`` accounting and identical chosen
sets for every seed -- and the engine's CSR-topology validation.
"""

import numpy as np
import pytest

from repro.distributed.dist_spanner import DistributedRelaxedGreedy
from repro.distributed.engine import SynchronousNetwork
from repro.distributed.mis import (
    run_luby_mis,
    run_luby_mis_arrays,
    verify_mis_arrays,
)
from repro.distributed.protocols.luby import LubyMIS
from repro.exceptions import ProtocolError
from repro.experiments.workloads import make_workload
from repro.params import SpannerParams


def random_adjacency(n, p, seed):
    rng = np.random.default_rng(seed)
    adj = {u: set() for u in range(n)}
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                adj[u].add(v)
                adj[v].add(u)
    return adj


def to_csr(adj):
    n = len(adj)
    indptr = np.zeros(n + 1, dtype=np.int64)
    rows = []
    for u in range(n):
        nbrs = sorted(adj[u])
        indptr[u + 1] = indptr[u] + len(nbrs)
        rows.extend(nbrs)
    return indptr, np.asarray(rows, dtype=np.int64)


class TestLubyCsrEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 7])
    @pytest.mark.parametrize("p", [0.05, 0.3])
    def test_arrays_match_dict_runner(self, seed, p):
        adj = random_adjacency(60, p, seed)
        indptr, indices = to_csr(adj)
        dict_run = run_luby_mis(adj, seed=seed)
        csr_run = run_luby_mis_arrays(indptr, indices, seed=seed)
        assert csr_run.independent_set == dict_run.independent_set
        assert csr_run.engine_rounds == dict_run.engine_rounds
        assert csr_run.messages == dict_run.messages

    @pytest.mark.parametrize("seed", [2, 5])
    def test_scalar_engine_matches_batch_on_csr_topology(self, seed):
        """The CSR-native batch run bills exactly what the per-node
        scalar reference bills on the same array topology."""
        indptr, indices = to_csr(random_adjacency(40, 0.2, seed))
        runs = {}
        for engine in ("scalar", "batch"):
            net = SynchronousNetwork((indptr, indices))
            runs[engine] = net.run(LubyMIS(seed=seed), engine=engine)
        assert runs["scalar"].rounds == runs["batch"].rounds
        assert runs["scalar"].messages == runs["batch"].messages
        assert runs["scalar"].words == runs["batch"].words
        assert list(runs["scalar"].outputs.items()) == list(
            runs["batch"].outputs.items()
        )

    def test_empty_and_isolated(self):
        empty = run_luby_mis_arrays(
            np.zeros(1, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert empty.independent_set == frozenset()
        iso = run_luby_mis_arrays(
            np.zeros(4, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert iso.independent_set == frozenset({0, 1, 2})


class TestVerifyMisArrays:
    def test_accepts_valid(self):
        indptr, indices = to_csr({0: {1}, 1: {0, 2}, 2: {1}})
        verify_mis_arrays(indptr, indices, np.array([True, False, True]))

    def test_rejects_dependent(self):
        indptr, indices = to_csr({0: {1}, 1: {0}})
        with pytest.raises(ProtocolError, match="independent"):
            verify_mis_arrays(indptr, indices, np.array([True, True]))

    def test_rejects_non_maximal(self):
        indptr, indices = to_csr({0: {1}, 1: {0}, 2: set()})
        with pytest.raises(ProtocolError, match="maximal"):
            verify_mis_arrays(
                indptr, indices, np.array([True, False, False])
            )


class TestEngineCsrTopology:
    def test_rejects_self_loop(self):
        indptr = np.array([0, 1, 2], dtype=np.int64)
        indices = np.array([0, 0], dtype=np.int64)
        with pytest.raises(ProtocolError, match="self-loop"):
            SynchronousNetwork((indptr, indices))

    def test_rejects_asymmetric(self):
        indptr = np.array([0, 1, 1], dtype=np.int64)
        indices = np.array([1], dtype=np.int64)
        with pytest.raises(ProtocolError, match="symmetric"):
            SynchronousNetwork((indptr, indices))

    def test_rejects_unsorted_rows(self):
        indptr = np.array([0, 2, 3, 4], dtype=np.int64)
        indices = np.array([2, 1, 0, 0], dtype=np.int64)
        with pytest.raises(ProtocolError, match="ascending"):
            SynchronousNetwork((indptr, indices))

    def test_nodes_and_scalar_adjacency(self):
        indptr, indices = to_csr({0: {1}, 1: {0, 2}, 2: {1}})
        net = SynchronousNetwork((indptr, indices))
        assert net.nodes == [0, 1, 2]
        assert net._scalar_adj()[1] == (0, 2)


class TestProximityGraphCsr:
    def test_build_matches_dict_reference(self):
        """The CSR proximity graph equals the dict-of-sets reference
        derived from the same pairwise distances."""
        wl = make_workload("uniform", 120, seed=9)
        params = SpannerParams.from_epsilon(0.5)
        builder = DistributedRelaxedGreedy(params, seed=0)
        spanner = builder.build(wl.graph, wl.points.distance).spanner
        from repro.graphs.paths import dijkstra

        for radius in (0.05, 0.15):
            indptr, indices = builder._proximity_graph(spanner, radius)
            n = spanner.num_vertices
            assert indptr.size == n + 1
            reference = {
                u: {
                    v
                    for v, d in dijkstra(spanner, u, cutoff=radius).items()
                    if v != u
                }
                for u in range(n)
            }
            for u in range(n):
                row = indices[indptr[u] : indptr[u + 1]]
                assert (np.diff(row) > 0).all() or row.size <= 1
                assert set(row.tolist()) == reference[u]
