"""CLI driver: run the full experiment suite and print markdown.

Usage::

    python -m repro.experiments.run_all [--quick] [--seed N] [--only E1,E4]

The output is the body that EXPERIMENTS.md records (claimed vs measured
for every experiment).
"""

from __future__ import annotations

import argparse
import sys
import time

from .runner import EXPERIMENT_REGISTRY


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="small sizes")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--only", type=str, default="", help="comma-separated experiment ids"
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit markdown instead of text"
    )
    args = parser.parse_args(argv)

    wanted = (
        {w.strip() for w in args.only.split(",") if w.strip()}
        if args.only
        else set(EXPERIMENT_REGISTRY)
    )
    unknown = wanted - set(EXPERIMENT_REGISTRY)
    if unknown:
        print(
            f"unknown experiment id(s): {sorted(unknown)}; "
            f"available: {sorted(EXPERIMENT_REGISTRY)}",
            file=sys.stderr,
        )
        return 2
    all_passed = True
    for name in sorted(EXPERIMENT_REGISTRY):
        if name not in wanted:
            continue
        start = time.perf_counter()
        result = EXPERIMENT_REGISTRY[name](quick=args.quick, seed=args.seed)
        elapsed = time.perf_counter() - start
        if args.markdown:
            print(result.to_markdown())
            print(f"*({elapsed:.1f}s)*\n")
        else:
            print(result.to_text())
            print(f"({elapsed:.1f}s)\n")
        all_passed &= result.passed
    return 0 if all_passed else 1


if __name__ == "__main__":
    sys.exit(main())
