"""Distributed BFS tree construction.

The standard layered-flooding protocol: the root announces level 0; a
node adopting level ``l`` announces ``l + 1``; each node's parent is its
first announcer (lowest id on ties).  Terminates in ``eccentricity(root)
+ O(1)`` rounds.  The tree feeds :class:`ConvergecastSum` and gives the
engine a protocol whose round count is topology-dependent (unlike the
fixed-k gathers), which the test-suite uses to validate round accounting.

Batch execution: the wave is a frontier mask; one round adopts every
unvisited node with a frontier neighbor at once (parent = minimum-id
offering slot via a segment reduction), and the patience counter is a
single global integer because an unadopted node has, by construction,
never seen an offer.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...arrayops import segment_any, segment_min
from ...exceptions import ProtocolError
from ..engine import BatchContext, BatchProtocol, NodeContext
from ..messages import payload_words

__all__ = ["BFSTree"]

_LEVEL_WORDS = payload_words(("level", 0))


class BFSTree(BatchProtocol):
    """Build a BFS tree rooted at ``root``.

    Output per node: ``(level, parent)`` -- ``(0, root)`` at the root,
    ``(None, None)`` for nodes in other components (they halt when the
    wave cannot reach them; see ``patience``).

    Parameters
    ----------
    root:
        Root node id.
    patience:
        Rounds a node waits without hearing a wave before giving up;
        must exceed the graph diameter for correct cross-component
        behaviour.  Defaults to a generous bound set by the engine's
        ``max_rounds`` budget at run time.
    """

    name = "bfs-tree"

    # Shard contract: the wave state is per-node (parents are compact
    # indices in the global index space, so they transfer verbatim) and
    # the patience counter ticks identically in every shard.
    supports_shard = True
    batch_state_sync = {
        "level": "node",
        "parent": "node",
        "frontier": "node",
        "idle": "replicated",
    }

    def __init__(self, root: int, patience: int = 1_000) -> None:
        if patience < 1:
            raise ProtocolError(f"patience must be >= 1, got {patience}")
        self._root = root
        self._patience = patience

    # ------------------------------------------------------------------
    # Scalar tier (semantic reference)
    # ------------------------------------------------------------------
    def on_start(self, ctx: NodeContext) -> dict[int, Any] | None:
        ctx.state["level"] = None
        ctx.state["parent"] = None
        ctx.state["idle"] = 0
        if ctx.node == self._root:
            ctx.state["level"] = 0
            ctx.state["parent"] = ctx.node
            ctx.halt()
            return {v: ("level", 0) for v in ctx.neighbors}
        return None

    def on_round(
        self, ctx: NodeContext, inbox: dict[int, Any]
    ) -> dict[int, Any] | None:
        offers = sorted(
            (payload[1], sender)
            for sender, payload in inbox.items()
            if payload[0] == "level"
        )
        if offers:
            level, parent = offers[0]
            ctx.state["level"] = level + 1
            ctx.state["parent"] = parent
            ctx.halt()
            return {
                v: ("level", level + 1)
                for v in ctx.neighbors
                if v != parent
            }
        ctx.state["idle"] += 1
        if ctx.state["idle"] >= self._patience:
            ctx.halt()  # unreachable from the root
        return None

    def output(self, ctx: NodeContext) -> tuple[int | None, int | None]:
        return (ctx.state["level"], ctx.state["parent"])

    # ------------------------------------------------------------------
    # Batch tier
    # ------------------------------------------------------------------
    def on_start_batch(self, net: BatchContext) -> None:
        n = net.num_nodes
        level = np.full(n, -1, dtype=np.int64)
        parent = np.full(n, -1, dtype=np.int64)
        frontier = np.zeros(n, dtype=bool)
        root_pos = np.searchsorted(net.labels, self._root)
        has_root = (
            root_pos < n and int(net.labels[root_pos]) == self._root
        )
        if has_root:
            level[root_pos] = 0
            parent[root_pos] = root_pos
            frontier[root_pos] = True
            net.halt(np.asarray([root_pos]))
            # The root announces to every neighbor.
            net.post_slots(net.sources == root_pos, _LEVEL_WORDS)
        net.state.update(level=level, parent=parent, frontier=frontier, idle=0)

    def on_round_batch(self, net: BatchContext) -> None:
        st = net.state
        level: np.ndarray = st["level"]
        parent: np.ndarray = st["parent"]
        frontier: np.ndarray = st["frontier"]

        # An offer arrives on slot e iff the neighbor announced last
        # round and this slot's owner is not that neighbor's parent.
        offer = frontier[net.indices] & (
            parent[net.indices] != net.sources
        )
        adopt = net.active & segment_any(offer, net.indptr)
        if adopt.any():
            offered_ids = np.where(offer, net.indices, net.num_nodes)
            best = segment_min(
                offered_ids, net.indptr, empty=net.num_nodes
            )
            wave_level = int(level[frontier][0]) + 1
            level[adopt] = wave_level
            parent[adopt] = best[adopt]
            # Adopters announce to all neighbors but their parent.
            net.post_slots(
                adopt[net.sources]
                & (net.indices != parent[net.sources]),
                _LEVEL_WORDS,
            )
            net.halt(adopt)
        st["frontier"] = adopt
        st["idle"] += 1
        if st["idle"] >= self._patience:
            net.halt(np.ones(net.num_nodes, dtype=bool))

    def outputs_batch(
        self, net: BatchContext
    ) -> dict[int, tuple[int | None, int | None]]:
        level = net.state["level"]
        parent = net.state["parent"]
        out: dict[int, tuple[int | None, int | None]] = {}
        for i, u in enumerate(net.labels.tolist()):
            if level[i] < 0:
                out[int(u)] = (None, None)
            else:
                out[int(u)] = (int(level[i]), int(net.labels[parent[i]]))
        return out
