"""Tests for mutually-redundant edge elimination (Section 2.2.5)."""

import pytest

from repro.core.cluster_graph import ClusterGraph
from repro.core.cover import build_cluster_cover
from repro.core.redundancy import (
    build_conflict_graph,
    find_redundant_pairs,
    greedy_mis,
    remove_redundant_edges,
)
from repro.exceptions import GraphError
from repro.graphs.graph import Graph


def make_h(edges, n) -> ClusterGraph:
    """Wrap a hand-built H graph (cover content irrelevant for these tests)."""
    h = Graph(n)
    for u, v, w in edges:
        h.add_edge(u, v, w)
    cover = build_cluster_cover(h, 0.0)
    return ClusterGraph(
        graph=h, cover=cover, w_prev=1.0, num_intra_edges=0, num_inter_edges=0
    )


class TestGreedyMis:
    def test_empty(self):
        assert greedy_mis({}) == set()

    def test_independent_and_maximal(self):
        adjacency = {
            (0, 1): {(1, 2)},
            (1, 2): {(0, 1), (2, 3)},
            (2, 3): {(1, 2)},
        }
        mis = greedy_mis(adjacency)
        for node in mis:
            assert not adjacency[node] & mis
        for node in adjacency:
            assert node in mis or adjacency[node] & mis

    def test_prefers_low_ids(self):
        adjacency = {(0, 1): {(5, 6)}, (5, 6): {(0, 1)}}
        assert greedy_mis(adjacency) == {(0, 1)}


class TestFindRedundantPairs:
    def test_parallel_close_edges_are_redundant(self):
        """Two nearly-parallel edges with tiny H-connections between
        endpoints satisfy both conditions."""
        # u=0, v=1 and u'=2, v'=3; H gives sp(0,2)=sp(1,3)=0.01.
        h = make_h([(0, 2, 0.01), (1, 3, 0.01)], 4)
        added = [(0, 1, 1.0), (2, 3, 1.0)]
        pairs = find_redundant_pairs(added, h, t1=1.2, w_cur=1.0)
        assert len(pairs) == 1

    def test_far_edges_not_redundant(self):
        h = make_h([(0, 2, 3.0), (1, 3, 3.0)], 4)
        added = [(0, 1, 1.0), (2, 3, 1.0)]
        assert not find_redundant_pairs(added, h, t1=1.2, w_cur=1.0)

    def test_disconnected_endpoints_not_redundant(self):
        h = make_h([], 4)
        added = [(0, 1, 1.0), (2, 3, 1.0)]
        assert not find_redundant_pairs(added, h, t1=1.2, w_cur=1.0)

    def test_opposite_orientation_detected(self):
        """Pairing (u,v') and (v,u') must also be checked (d_J takes the
        min of the two pairings)."""
        h = make_h([(0, 3, 0.01), (1, 2, 0.01)], 4)
        added = [(0, 1, 1.0), (2, 3, 1.0)]
        pairs = find_redundant_pairs(added, h, t1=1.2, w_cur=1.0)
        assert len(pairs) == 1

    def test_one_sided_condition_insufficient(self):
        """Condition must hold for *both* edges: a cheap bypass for one
        edge only does not make the pair mutually redundant."""
        # sp(0,2)=0.01 but sp(1,3)=5 -> neither condition can hold.
        h = make_h([(0, 2, 0.01), (1, 3, 5.0)], 4)
        added = [(0, 1, 1.0), (2, 3, 1.0)]
        assert not find_redundant_pairs(added, h, t1=1.2, w_cur=5.0)

    def test_rejects_bad_t1(self):
        h = make_h([], 2)
        with pytest.raises(GraphError):
            find_redundant_pairs([(0, 1, 1.0)], h, t1=1.0, w_cur=1.0)

    def test_empty_added(self):
        h = make_h([], 2)
        assert find_redundant_pairs([], h, t1=1.2, w_cur=1.0) == []


class TestConflictGraphAndRemoval:
    def test_conflict_graph_symmetric(self):
        pairs = [(((0, 1, 1.0)), ((2, 3, 1.0)))]
        adjacency = build_conflict_graph(pairs)
        assert adjacency[(0, 1)] == {(2, 3)}
        assert adjacency[(2, 3)] == {(0, 1)}

    def test_removal_keeps_counterpart(self):
        """Every removed edge must keep a surviving redundant partner
        (the Theorem 10 safety condition)."""
        h = make_h([(0, 2, 0.01), (1, 3, 0.01)], 4)
        spanner = Graph(4)
        spanner.add_edge(0, 1, 1.0)
        spanner.add_edge(2, 3, 1.0)
        added = [(0, 1, 1.0), (2, 3, 1.0)]
        outcome = remove_redundant_edges(
            spanner, added, h, t1=1.2, w_cur=1.0
        )
        assert len(outcome.removed) == 1
        assert len(outcome.kept) == 1
        removed_key = (outcome.removed[0][0], outcome.removed[0][1])
        kept_keys = {(u, v) for u, v, _ in outcome.kept}
        assert outcome.conflict_graph[removed_key] & kept_keys
        # spanner mutated accordingly
        assert spanner.num_edges == 1

    def test_no_pairs_no_removal(self):
        h = make_h([], 4)
        spanner = Graph(4)
        spanner.add_edge(0, 1, 1.0)
        outcome = remove_redundant_edges(
            spanner, [(0, 1, 1.0)], h, t1=1.2, w_cur=1.0
        )
        assert not outcome.removed and spanner.num_edges == 1

    def test_custom_mis_function_used(self):
        """The MIS hook decides who survives."""
        h = make_h([(0, 2, 0.01), (1, 3, 0.01)], 4)
        spanner = Graph(4)
        spanner.add_edge(0, 1, 1.0)
        spanner.add_edge(2, 3, 1.0)
        added = [(0, 1, 1.0), (2, 3, 1.0)]

        def keep_high(adjacency):
            return {max(adjacency)}

        outcome = remove_redundant_edges(
            spanner, added, h, t1=1.2, w_cur=1.0, mis=keep_high
        )
        assert outcome.removed[0][:2] == (0, 1)
        assert spanner.has_edge(2, 3)
