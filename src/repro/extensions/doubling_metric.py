"""Spanners for abstract (doubling) metric spaces -- the paper's Section 4.

The paper's future-work section conjectures that for low-dimensional
doubling metrics an ``O(log n log* n)``-round algorithm yielding a
``(1+eps)``-spanner of constant degree exists, noting that the presented
techniques *almost* carry over: the only Euclidean-specific ingredient on
the stretch side is the covered-edge filter (it needs angles), and the
only one on the weight side is the leapfrog property.

This module implements that program's feasible half:

* :func:`build_metric_ubg` -- the unit-ball graph of an arbitrary finite
  metric (edges between points at distance <= ``alpha``; gray zone
  decided by a policy like the geometric builders);
* :func:`build_metric_spanner` -- the relaxed greedy algorithm with the
  covered-edge filter disabled.  Every remaining component (binning,
  cluster covers, equation (1) selection, the cluster graph, redundancy
  removal) is purely metric, so Theorem 10's stretch argument carries
  over verbatim; degree and weight are measured rather than proven,
  which is exactly the open part of the paper's conjecture.  Experiment
  X1 tracks both on doubling workloads (l1/linf normed points).
"""

from __future__ import annotations

from typing import Callable

from ..core.covered import DistanceOracle
from ..core.relaxed_greedy import RelaxedGreedySpanner, SpannerResult
from ..exceptions import GraphError
from ..graphs.build import GrayZonePolicy
from ..graphs.graph import Graph
from ..params import SpannerParams

__all__ = [
    "build_metric_ubg",
    "build_metric_spanner",
    "lp_metric",
    "LpMetricOracle",
]


class LpMetricOracle:
    """Batched l_p distance oracle over a coordinate array.

    Implements the :class:`~repro.core.oracle.DistanceOracle` protocol:
    the scalar call routes through the same vectorized ``pairs``
    reductions on a one-element batch (numpy's scalar ``pow`` rounds
    differently from the vectorized loop in the last ulp), so the two
    views agree bit-for-bit per pair -- which is what lets the doubling
    extension ride the flattened covered-filter witness scan.
    """

    __slots__ = ("_arr", "_p")

    batched = True

    def __init__(self, coords, p: float) -> None:
        import numpy as np

        arr = np.asarray(coords, dtype=float)
        if arr.ndim != 2:
            raise GraphError("coords must be 2-D")
        if p != float("inf") and p < 1:
            raise GraphError(f"p must be >= 1, got {p}")
        self._arr = arr
        self._p = p

    def __call__(self, u: int, v: int) -> float:
        import numpy as np

        return float(
            self.pairs(
                np.asarray([u], dtype=np.int64),
                np.asarray([v], dtype=np.int64),
            )[0]
        )

    def pairs(self, u, v):
        import numpy as np

        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        diff = np.abs(self._arr[u] - self._arr[v])
        if self._p == float("inf"):
            return np.max(diff, axis=1)
        return np.sum(diff ** self._p, axis=1) ** (1.0 / self._p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LpMetricOracle(n={self._arr.shape[0]}, p={self._p})"


def lp_metric(coords, p: float) -> DistanceOracle:
    """Distance oracle for the l_p norm over a coordinate array.

    ``p = float('inf')`` gives the Chebyshev metric.  Points in a fixed
    dimension under any l_p norm form a doubling metric -- the workload
    family for the X1 experiment.  The returned object implements the
    batched oracle protocol (see :class:`LpMetricOracle`).
    """
    return LpMetricOracle(coords, p)


def build_metric_ubg(
    n: int,
    dist: DistanceOracle,
    alpha: float = 1.0,
    *,
    decide_gray: Callable[[int, int, float], bool] | None = None,
) -> Graph:
    """Unit-ball graph of a finite metric given by ``dist``.

    Pairs at distance <= ``alpha`` are edges; pairs in ``(alpha, 1]`` are
    decided by ``decide_gray`` (default: keep); pairs beyond 1 never.
    Quadratic in ``n`` -- abstract metrics admit no grid acceleration.
    """
    if not 0.0 < alpha <= 1.0:
        raise GraphError(f"alpha must be in (0, 1], got {alpha}")
    graph = Graph(n)
    for u in range(n):
        for v in range(u + 1, n):
            d = dist(u, v)
            if d <= 0.0:
                raise GraphError(f"coincident points {u}, {v} unsupported")
            if d > 1.0:
                continue
            if d <= alpha or decide_gray is None or decide_gray(u, v, d):
                graph.add_edge(u, v, d)
    return graph


def build_metric_spanner(
    graph: Graph,
    dist: DistanceOracle,
    epsilon: float,
    *,
    alpha: float = 1.0,
) -> SpannerResult:
    """Relaxed greedy spanner over an abstract metric (angle-free).

    Parameters mirror :func:`repro.core.relaxed_greedy.build_spanner`;
    the covered-edge filter is disabled (its angle test presumes
    Euclidean geometry).  The output is a certified ``(1+epsilon)``-
    spanner for *any* metric; on doubling metrics the X1 experiment shows
    degree and lightness staying in the constant bands the paper
    conjectures.
    """
    params = SpannerParams.from_epsilon(epsilon, alpha=alpha)
    builder = RelaxedGreedySpanner(params, use_covered_filter=False)
    return builder.build(graph, dist)
