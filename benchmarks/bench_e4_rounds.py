"""E4 bench: regenerate the distributed round-complexity table."""


def test_e4_rounds_table(run_experiment):
    result = run_experiment("E4")
    for row in result.rows:
        assert row["stretch_ok"]
        # O(1) gather rounds per phase (constant band; alpha=1 workload).
        assert row["gather_per_phase"] <= 40
