"""E6 bench: regenerate the alpha/adversary sensitivity table."""


def test_e6_alpha_table(run_experiment):
    result = run_experiment("E6")
    for row in result.rows:
        assert row["within_bound"]
