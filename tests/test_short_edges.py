"""Tests for phase 0 (PROCESS-SHORT-EDGES, Lemma 1, Theorem 2)."""

import pytest

from repro.core.short_edges import process_short_edges
from repro.exceptions import GraphError
from repro.geometry.points import PointSet
from repro.graphs.analysis import measure_stretch
from repro.graphs.build import build_udg
from repro.graphs.graph import Graph


@pytest.fixture()
def blob():
    """A tight blob (mutual distances < alpha) plus one far node."""
    points = PointSet(
        [[0.0, 0.0], [0.01, 0.0], [0.0, 0.01], [0.015, 0.01], [5.0, 5.0]]
    )
    graph = build_udg(points)
    return points, graph


def short_edges_of(graph, w0):
    return [(u, v, w) for u, v, w in graph.edges() if w <= w0]


class TestProcessShortEdges:
    def test_components_are_cliques(self, blob):
        points, graph = blob
        short = short_edges_of(graph, 0.02)
        outcome = process_short_edges(graph, short, points.distance, 1.5)
        assert len(outcome.components) == 1
        assert set(outcome.components[0]) == {0, 1, 2, 3}

    def test_output_spans_short_edges(self, blob):
        """Theorem 2(i): every E_0 edge has a t-path in G'_0."""
        points, graph = blob
        short = short_edges_of(graph, 0.02)
        outcome = process_short_edges(graph, short, points.distance, 1.5)
        base = Graph(graph.num_vertices)
        for u, v, w in short:
            base.add_edge(u, v, w)
        assert measure_stretch(base, outcome.spanner).max_stretch <= 1.5 + 1e-9

    def test_far_node_untouched(self, blob):
        points, graph = blob
        short = short_edges_of(graph, 0.02)
        outcome = process_short_edges(graph, short, points.distance, 1.5)
        assert outcome.spanner.degree(4) == 0

    def test_no_short_edges(self, blob):
        points, graph = blob
        outcome = process_short_edges(graph, [], points.distance, 1.5)
        assert outcome.spanner.num_edges == 0
        assert outcome.components == ()

    def test_lemma1_violation_detected(self):
        """A 'short-edge' chain whose endpoints are NOT adjacent in G
        must be rejected: the input was not a valid alpha-UBG."""
        points = PointSet([[0.0, 0.0], [0.5, 0.0], [1.0, 0.0]])
        graph = build_udg(points)  # 0-1, 1-2 but not 0-2 (distance 1.0 is edge!)
        # Craft a graph where 0-2 is genuinely missing:
        g = Graph(3)
        g.add_edge(0, 1, 0.5)
        g.add_edge(1, 2, 0.5)
        with pytest.raises(GraphError, match="Lemma 1"):
            process_short_edges(
                g, [(0, 1, 0.5), (1, 2, 0.5)], points.distance, 1.5
            )

    def test_check_clique_disabled_skips_validation(self):
        points = PointSet([[0.0, 0.0], [0.5, 0.0], [1.0, 0.0]])
        g = Graph(3)
        g.add_edge(0, 1, 0.5)
        g.add_edge(1, 2, 0.5)
        outcome = process_short_edges(
            g, [(0, 1, 0.5), (1, 2, 0.5)], points.distance, 1.5,
            check_clique=False,
        )
        assert outcome.spanner.num_edges >= 2

    def test_rejects_bad_t(self, blob):
        points, graph = blob
        with pytest.raises(GraphError):
            process_short_edges(graph, [], points.distance, 0.9)

    def test_multiple_components(self):
        """Two separate blobs produce two clique spanners."""
        coords = [[0.0, 0.0], [0.01, 0.0], [0.3, 0.3], [0.31, 0.3]]
        points = PointSet(coords)
        graph = build_udg(points)
        short = short_edges_of(graph, 0.02)
        outcome = process_short_edges(graph, short, points.distance, 1.5)
        assert len(outcome.components) == 2
        assert outcome.spanner.has_edge(0, 1)
        assert outcome.spanner.has_edge(2, 3)
        assert not outcome.spanner.has_edge(1, 2)

    def test_stats_accumulated(self, blob):
        points, graph = blob
        short = short_edges_of(graph, 0.02)
        outcome = process_short_edges(graph, short, points.distance, 1.5)
        assert outcome.stats.num_edges_examined > 0
        assert outcome.num_short_edges == len(short)
