"""E7 bench: regenerate the dimension (2-D vs 3-D) table."""


def test_e7_dimension_table(run_experiment):
    result = run_experiment("E7")
    assert {row["d"] for row in result.rows} == {2, 3}
    for row in result.rows:
        assert row["within_bound"]
