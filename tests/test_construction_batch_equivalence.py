"""Batched construction kernels vs their scalar references, bit for bit.

Every array port of the construction core -- ball-growing cover,
center-based cover, cluster-graph assembly, redundancy pair detection,
query answering, covered-edge filtering, edge binning -- is pinned here
against the retained scalar reference on randomized workloads: equal
centers, assignments, distances (exact float equality), graphs, pair
lists and verdicts.
"""

import numpy as np
import pytest

import repro.core.cluster_graph as cluster_graph_mod
import repro.core.cover as cover_mod
import repro.graphs.paths as paths_mod
from repro.core.bins import EdgeBinning
from repro.core.cluster_graph import (
    answer_spanner_queries,
    build_cluster_graph,
    build_cluster_graph_reference,
)
from repro.core.cover import (
    build_cluster_cover,
    build_cluster_cover_reference,
    cover_from_centers,
)
from repro.core.covered import split_covered
from repro.core.redundancy import (
    find_redundant_pairs,
    find_redundant_pairs_reference,
)
from repro.core.relaxed_greedy import build_spanner
from repro.experiments.workloads import make_workload
from repro.graphs.paths import dijkstra, multi_source_ball_lists


def assert_covers_equal(a, b):
    assert a.centers == b.centers
    assert a.assignment == b.assignment
    assert a.center_distance == b.center_distance
    assert a.members == b.members


RADII = (0.0, 0.03, 0.1, 0.3, 1.0, 4.0)


class TestSparseBallKernel:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_ball_lists_match_dict_dijkstra(self, seed):
        wl = make_workload("clustered", 150, seed=seed)
        g = wl.graph
        rng = np.random.default_rng(seed)
        sources = np.sort(rng.choice(g.num_vertices, 25, replace=False))
        for cutoff in (0.0, 0.08, 0.4, 2.0):
            starts, verts, dists = multi_source_ball_lists(
                g, sources, cutoff
            )
            for i, s in enumerate(sources.tolist()):
                got = dict(
                    zip(
                        verts[starts[i] : starts[i + 1]].tolist(),
                        dists[starts[i] : starts[i + 1]].tolist(),
                    )
                )
                assert got == dijkstra(g, s, cutoff=cutoff)


class TestClusterCoverEquivalence:
    @pytest.mark.parametrize("scenario,n", [("uniform", 300), ("corridor", 280)])
    def test_batched_kernel_matches_reference(self, scenario, n):
        wl = make_workload(scenario, n, seed=5)
        for radius in RADII:
            batched = build_cluster_cover(wl.graph, radius, kernel="batched")
            scalar = build_cluster_cover_reference(wl.graph, radius)
            assert_covers_equal(batched, scalar)

    def test_explicit_order_and_universe(self):
        wl = make_workload("uniform", 300, seed=9)
        rng = np.random.default_rng(9)
        order = rng.permutation(300).tolist()
        universe = sorted(rng.choice(300, 220, replace=False).tolist())
        order_u = [u for u in order if u in set(universe)]
        for radius in (0.05, 0.4):
            batched = build_cluster_cover(
                wl.graph, radius, vertices=universe, order=order_u,
                kernel="batched",
            )
            scalar = build_cluster_cover_reference(
                wl.graph, radius, vertices=universe, order=order_u
            )
            assert_covers_equal(batched, scalar)

    def test_order_outside_universe_raises_like_reference(self):
        wl = make_workload("uniform", 300, seed=2)
        universe = list(range(200))
        from repro.exceptions import GraphError

        with pytest.raises(GraphError, match="outside the universe"):
            build_cluster_cover(
                wl.graph, 0.2, vertices=universe, order=[0, 250],
                kernel="batched",
            )
        with pytest.raises(GraphError, match="outside the universe"):
            build_cluster_cover_reference(
                wl.graph, 0.2, vertices=universe, order=[0, 250]
            )

    def test_auto_kernel_matches_reference(self):
        wl = make_workload("uniform", 400, seed=3)
        for radius in RADII:
            assert_covers_equal(
                build_cluster_cover(wl.graph, radius),
                build_cluster_cover_reference(wl.graph, radius),
            )


class TestCoverFromCentersEquivalence:
    @pytest.mark.parametrize("radius", [0.08, 0.3, 1.5])
    def test_all_inner_paths_agree(self, radius, monkeypatch):
        wl = make_workload("uniform", 300, seed=11)
        # Centers from ball growing dominate the graph at this radius.
        centers = build_cluster_cover(wl.graph, radius).centers
        outputs = []
        for forced in (True, False, None):
            if forced is None:
                monkeypatch.undo()
            else:
                monkeypatch.setattr(
                    cover_mod,
                    "prefer_batched_sources",
                    lambda g, s, c, _f=forced: _f,
                )
            outputs.append(cover_from_centers(wl.graph, radius, centers))
        assert_covers_equal(outputs[0], outputs[1])
        assert_covers_equal(outputs[0], outputs[2])

    def test_matches_handwritten_scalar_reference(self):
        wl = make_workload("uniform", 280, seed=13)
        radius = 0.35
        centers = sorted(build_cluster_cover(wl.graph, radius).centers)
        got = cover_from_centers(wl.graph, radius, centers)
        assignment, distances = {}, {}
        for c in centers:  # ascending: higher ids overwrite
            for v, d in dijkstra(wl.graph, c, cutoff=radius).items():
                assignment[v] = c
                distances[v] = d
        for c in centers:
            assignment[c] = c
            distances[c] = 0.0
        assert got.assignment == assignment
        assert got.center_distance == distances


def _phase_inputs(scenario, n, seed, radius_scale):
    """A realistic mid-phase state: partial spanner + cover + binning."""
    wl = make_workload(scenario, n, seed=seed)
    g = wl.graph
    us, vs, ws = g.edges_arrays()
    w_prev = float(np.quantile(ws, 0.3)) if ws.size else 0.1
    keep = ws <= w_prev
    spanner_edges = list(
        zip(us[keep].tolist(), vs[keep].tolist(), ws[keep].tolist())
    )
    from repro.graphs.graph import Graph

    spanner = Graph(n)
    for u, v, w in spanner_edges:
        spanner.add_edge(u, v, w)
    delta = 0.25 * radius_scale
    cover = build_cluster_cover(spanner, delta * w_prev)
    return wl, spanner, cover, w_prev, delta


class TestClusterGraphEquivalence:
    @pytest.mark.parametrize(
        "scenario,n,scale", [("uniform", 300, 1.0), ("clustered", 260, 2.0)]
    )
    def test_matches_reference(self, scenario, n, scale):
        _, spanner, cover, w_prev, delta = _phase_inputs(
            scenario, n, 7, scale
        )
        got = build_cluster_graph(spanner, cover, w_prev, delta)
        ref = build_cluster_graph_reference(spanner, cover, w_prev, delta)
        assert got.graph == ref.graph
        assert got.num_intra_edges == ref.num_intra_edges
        assert got.num_inter_edges == ref.num_inter_edges
        assert got.inter_center_degree() == ref.inter_center_degree()

    def test_both_probe_branches_match_reference(self, monkeypatch):
        _, spanner, cover, w_prev, delta = _phase_inputs("uniform", 300, 8, 1.0)
        ref = build_cluster_graph_reference(spanner, cover, w_prev, delta)
        for forced in (True, False):
            monkeypatch.setattr(
                cluster_graph_mod,
                "prefer_batched_sources",
                lambda g, s, c, _f=forced: _f,
            )
            got = build_cluster_graph(spanner, cover, w_prev, delta)
            assert got.graph == ref.graph
            assert got.num_inter_edges == ref.num_inter_edges


class TestRedundancyEquivalence:
    def _added_edges(self, seed, k=18):
        _, spanner, cover, w_prev, delta = _phase_inputs("uniform", 300, seed, 1.0)
        h = build_cluster_graph(spanner, cover, w_prev, delta)
        rng = np.random.default_rng(seed)
        added = []
        seen = set()
        while len(added) < k:
            u, v = int(rng.integers(300)), int(rng.integers(300))
            if u != v and (min(u, v), max(u, v)) not in seen:
                seen.add((min(u, v), max(u, v)))
                added.append((u, v, float(rng.uniform(w_prev, 2 * w_prev))))
        return added, h, w_prev

    @pytest.mark.parametrize("seed", [0, 4])
    def test_pairs_match_reference(self, seed):
        added, h, w_prev = self._added_edges(seed)
        for t1 in (1.2, 2.0, 4.0):
            got = find_redundant_pairs(added, h, t1, w_cur=2 * w_prev)
            ref = find_redundant_pairs_reference(
                added, h, t1, w_cur=2 * w_prev
            )
            assert got == ref

    def test_both_probe_branches_match(self, monkeypatch):
        # The dense/sparse pick now lives in paths.pair_distances (the
        # shared graph-metric pairs kernel); force it both ways there.
        added, h, w_prev = self._added_edges(1)
        ref = find_redundant_pairs_reference(added, h, 2.5, w_cur=2 * w_prev)
        for forced in (True, False):
            monkeypatch.setattr(
                paths_mod,
                "prefer_batched_sources",
                lambda g, s, c, _f=forced: _f,
            )
            assert find_redundant_pairs(added, h, 2.5, w_cur=2 * w_prev) == ref


class TestQueryAnswering:
    def test_verdicts_match_scalar_distance(self, monkeypatch):
        _, spanner, cover, w_prev, delta = _phase_inputs("uniform", 300, 6, 1.0)
        h = build_cluster_graph(spanner, cover, w_prev, delta)
        rng = np.random.default_rng(6)
        queries = [
            (int(rng.integers(300)), int(rng.integers(299)), float(rng.uniform(0.01, 0.5)))
            for _ in range(40)
        ]
        queries = [(x, y if y < x else y + 1, w) for x, y, w in queries]
        t = 1.5
        expected = [
            h.distance(x, y, cutoff=t * w) > t * w for x, y, w in queries
        ]
        for forced in (True, False):
            monkeypatch.setattr(
                paths_mod,
                "prefer_batched_sources",
                lambda g, s, c, _f=forced: _f,
            )
            assert answer_spanner_queries(h, queries, t) == expected


class TestCoveredFilterEquivalence:
    @pytest.mark.parametrize("scenario", ["uniform", "clustered"])
    def test_batch_oracle_matches_scalar_oracle(self, scenario):
        wl, spanner, _, w_prev, _ = _phase_inputs(scenario, 280, 12, 1.0)
        us, vs, ws = wl.graph.edges_arrays()
        sel = ws > w_prev
        bin_edges = list(
            zip(us[sel].tolist(), vs[sel].tolist(), ws[sel].tolist())
        )[:300]
        batch = split_covered(
            bin_edges, spanner, wl.points.distance, alpha=1.0, theta=0.5
        )
        scalar_oracle = lambda u, v: wl.points.distance(u, v)  # noqa: E731
        scalar = split_covered(
            bin_edges, spanner, scalar_oracle, alpha=1.0, theta=0.5
        )
        assert batch == scalar


class TestBinningEquivalence:
    def test_bins_of_matches_bin_of(self):
        binning = EdgeBinning(1.3, 0.8, 500)
        rng = np.random.default_rng(3)
        lengths = np.concatenate(
            [
                rng.uniform(1e-6, 1.0, 400),
                binning._boundaries(),  # exact boundary hits
                [0.8 / 500],
            ]
        )
        assert binning.bins_of(lengths).tolist() == [
            binning.bin_of(float(w)) for w in lengths
        ]

    def test_assign_matches_scalar_walk(self):
        binning = EdgeBinning(1.4, 1.0, 300)
        rng = np.random.default_rng(4)
        edges = [
            (int(rng.integers(300)), int(rng.integers(300)), float(w))
            for w in rng.uniform(1e-5, 1.0, 500)
        ]
        got = binning.assign(edges)
        ref: dict = {}
        for u, v, w in edges:
            ref.setdefault(binning.bin_of(w), []).append((u, v, w))
        assert got == ref
        assert list(got) == list(ref)  # first-occurrence key order

    def test_assign_error_matches_scalar_walk(self):
        from repro.exceptions import GraphError

        binning = EdgeBinning(1.5, 1.0, 100)
        with pytest.raises(GraphError, match="must be positive"):
            binning.assign([(0, 1, 0.5), (1, 2, -1.0), (2, 3, 99.0)])
        with pytest.raises(GraphError, match="exceeds top bin"):
            binning.assign([(0, 1, 0.5), (1, 2, 99.0), (2, 3, -1.0)])


class TestEndToEndPinning:
    def test_spanner_identical_under_forced_probe(self, monkeypatch):
        wl = make_workload("uniform", 350, seed=21)
        baseline = build_spanner(wl.graph, wl.points.distance, 0.5)
        base_edges = sorted(baseline.spanner.edges())
        base_phases = [
            (p.index, p.num_clusters, p.num_queries, p.num_added, p.num_removed)
            for p in baseline.phases
        ]
        for forced in (True, False):
            force = lambda g, s, c, _f=forced: _f
            # redundancy consults the probe through paths.pair_distances
            # these days, so patching paths_mod covers it.
            for mod in (paths_mod, cover_mod, cluster_graph_mod):
                monkeypatch.setattr(mod, "prefer_batched_sources", force)
            result = build_spanner(wl.graph, wl.points.distance, 0.5)
            assert sorted(result.spanner.edges()) == base_edges
            assert [
                (p.index, p.num_clusters, p.num_queries, p.num_added, p.num_removed)
                for p in result.phases
            ] == base_phases
