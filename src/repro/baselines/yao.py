"""Yao and Theta graphs -- classical cone-based topology control.

The Yao graph [Yao 1982] partitions the plane around each node into ``k``
equal cones and keeps, per cone, the edge to the *nearest* neighbor in
that cone; the Theta graph keeps the neighbor minimizing the projection
onto the cone bisector.  Both are standard topology-control baselines: for
``k > 6`` they are spanners of the UDG restricted to each cone's
reachability, with stretch ``1/(1 - 2*sin(pi/k))`` in the complete-graph
setting, but they bound only *out*-degree, not total degree, and give no
weight guarantee -- exactly the gaps the paper's algorithm closes (E5).

These constructions are 2-D (cone partitions in higher dimensions need
Yao's simplicial machinery; the paper's own baseline comparisons [15] are
planar too).

Both builders are vectorized: the base graph's edges are pulled out as
numpy arrays once, cone assignment and per-(node, cone) minimization run
as array sorts, and the survivors are bulk-inserted -- no per-edge Python
dispatch.  Tie-breaking matches the scalar definition: Yao keeps the
lexicographic minimum ``(weight, neighbor)`` per cone, Theta the minimum
``(projection, neighbor)``.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import GraphError
from ..geometry.points import PointSet
from ..graphs.graph import Graph

__all__ = ["yao_graph", "theta_graph", "yao_stretch_bound"]


def _check_2d(points: PointSet) -> None:
    if points.dim != 2:
        raise GraphError(
            f"cone-based constructions are 2-D only; got d={points.dim}"
        )


def yao_stretch_bound(k: int) -> float:
    """Classical stretch bound ``1/(1 - 2*sin(pi/k))`` (finite for k > 6)."""
    if k <= 6:
        return math.inf
    return 1.0 / (1.0 - 2.0 * math.sin(math.pi / k))


def _directed_edges(
    base: Graph,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Both orientations of every base edge as aligned arrays."""
    eu, ev, ew = base.edges_arrays()
    return (
        np.concatenate([eu, ev]),
        np.concatenate([ev, eu]),
        np.concatenate([ew, ew]),
    )


def _cone_indices(
    dx: np.ndarray, dy: np.ndarray, k: int
) -> np.ndarray:
    """Cone index of each direction vector (vectorized ``atan2`` binning)."""
    angle = np.mod(np.arctan2(dy, dx), 2.0 * math.pi)
    idx = (angle / (2.0 * math.pi / k)).astype(np.int64)
    return np.minimum(idx, k - 1)  # guard the 2*pi boundary


def _insert_selected(
    out: Graph, src: np.ndarray, dst: np.ndarray, w: np.ndarray
) -> Graph:
    """Bulk-insert selected directed edges as undirected, deduplicated.

    Duplicate selections of the same undirected edge (picked from both
    endpoints) carry the same base weight, so keeping the first is exact.
    """
    if src.shape[0] == 0:
        return out
    cu = np.minimum(src, dst)
    cv = np.maximum(src, dst)
    pair_key = cu * np.int64(out.num_vertices) + cv
    _, first = np.unique(pair_key, return_index=True)
    out.add_weighted_edges_arrays(cu[first], cv[first], w[first])
    return out


def yao_graph(base: Graph, points: PointSet, k: int = 8) -> Graph:
    """Yao graph of ``base``: nearest neighbor per cone, per node.

    Parameters
    ----------
    base:
        The communication graph (typically a UDG); only its edges are
        candidates, making this the "Yao topology control" variant used
        in ad-hoc network papers rather than the complete-graph original.
    points:
        2-D coordinates of the vertices.
    k:
        Number of cones (``>= 2``).
    """
    _check_2d(points)
    if k < 2:
        raise GraphError(f"need k >= 2 cones, got {k}")
    out = Graph(base.num_vertices)
    du, dv, dw = _directed_edges(base)
    if du.shape[0] == 0:
        return out
    coords = points.coords
    delta = coords[dv] - coords[du]
    cone = _cone_indices(delta[:, 0], delta[:, 1], k)
    # Sort so the first row of each (node, cone) group is the minimum
    # (weight, neighbor) entry -- lexsort keys are least significant first.
    order = np.lexsort((dv, dw, cone, du))
    du, dv, dw, cone = du[order], dv[order], dw[order], cone[order]
    group_first = np.empty(du.shape[0], dtype=bool)
    group_first[0] = True
    group_first[1:] = (du[1:] != du[:-1]) | (cone[1:] != cone[:-1])
    return _insert_selected(
        out, du[group_first], dv[group_first], dw[group_first]
    )


def theta_graph(base: Graph, points: PointSet, k: int = 8) -> Graph:
    """Theta graph of ``base``: per cone, keep the neighbor with the
    smallest projection onto the cone's bisector."""
    _check_2d(points)
    if k < 2:
        raise GraphError(f"need k >= 2 cones, got {k}")
    out = Graph(base.num_vertices)
    du, dv, dw = _directed_edges(base)
    if du.shape[0] == 0:
        return out
    coords = points.coords
    delta = coords[dv] - coords[du]
    cone_angle = 2.0 * math.pi / k
    cone = _cone_indices(delta[:, 0], delta[:, 1], k)
    bisector = (cone.astype(np.float64) + 0.5) * cone_angle
    projection = delta[:, 0] * np.cos(bisector) + delta[:, 1] * np.sin(
        bisector
    )
    order = np.lexsort((dw, dv, projection, cone, du))
    du, dv, dw, cone = du[order], dv[order], dw[order], cone[order]
    group_first = np.empty(du.shape[0], dtype=bool)
    group_first[0] = True
    group_first[1:] = (du[1:] != du[:-1]) | (cone[1:] != cone[:-1])
    return _insert_selected(
        out, du[group_first], dv[group_first], dw[group_first]
    )
