"""Luby's randomized maximal independent set as a message protocol.

The paper invokes the Kuhn--Moscibroda--Wattenhofer ``O(log* n)`` MIS for
growth-bounded graphs [11] as a black box.  Reimplementing KMW faithfully
is out of scope (see DESIGN.md, Substitutions); we run Luby's classic
algorithm instead -- ``O(log n)`` rounds with high probability on *any*
graph, and only a handful of iterations on the small, growth-bounded
derived graphs the spanner algorithm actually builds.

Each Luby iteration costs two message rounds:

1. every undecided node draws a random priority and sends it to all
   undecided neighbors;
2. a node whose priority is a strict local minimum (ties broken by id)
   joins the MIS and announces it; neighbors of new MIS members become
   permanently excluded and announce that.

The protocol is exact: on termination the chosen set is independent and
maximal (asserted by the test-suite on random graphs).
"""

from __future__ import annotations

import random
from typing import Any

from ..engine import NodeContext, Protocol

__all__ = ["LubyMIS"]

_UNDECIDED = "undecided"
_IN_MIS = "in_mis"
_OUT = "out"


class LubyMIS(Protocol):
    """Luby's MIS over the run topology.

    Parameters
    ----------
    seed:
        Seed for the per-node pseudo-random priorities (node ids are mixed
        in, so one seed drives the whole network deterministically).

    Notes
    -----
    Output per node is ``True`` iff the node joined the MIS.  Isolated
    nodes join immediately.
    """

    name = "luby-mis"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    # ------------------------------------------------------------------
    def _draw(self, node: int, iteration: int) -> float:
        rng = random.Random(f"{self._seed}:{node}:{iteration}")
        return rng.random()

    def on_start(self, ctx: NodeContext) -> dict[int, Any] | None:
        ctx.state["status"] = _UNDECIDED
        ctx.state["iteration"] = 0
        ctx.state["phase"] = "propose"
        ctx.state["active_nbrs"] = set(ctx.neighbors)
        if not ctx.neighbors:  # isolated: in MIS by definition
            ctx.state["status"] = _IN_MIS
            ctx.halt()
            return None
        priority = self._draw(ctx.node, 0)
        ctx.state["priority"] = priority
        return {v: ("bid", priority) for v in ctx.neighbors}

    # ------------------------------------------------------------------
    def on_round(
        self, ctx: NodeContext, inbox: dict[int, Any]
    ) -> dict[int, Any] | None:
        if ctx.state["phase"] == "propose":
            return self._resolve(ctx, inbox)
        return self._propose(ctx, inbox)

    def _resolve(
        self, ctx: NodeContext, inbox: dict[int, Any]
    ) -> dict[int, Any] | None:
        """Compare bids; winners join the MIS and everyone reports fate."""
        active: set[int] = ctx.state["active_nbrs"]
        my = (ctx.state["priority"], ctx.node)
        wins = True
        for sender, payload in inbox.items():
            if payload[0] == "bid" and sender in active:
                if (payload[1], sender) < my:
                    wins = False
            elif payload[0] == "fate" and payload[1] == _OUT:
                # Last-breath notification from a neighbor that went out
                # in the previous notify round.
                active.discard(sender)
        ctx.state["phase"] = "notify"
        if wins:
            ctx.state["status"] = _IN_MIS
            return {v: ("fate", _IN_MIS) for v in active}
        return {v: ("fate", _UNDECIDED) for v in active}

    def _propose(
        self, ctx: NodeContext, inbox: dict[int, Any]
    ) -> dict[int, Any] | None:
        """Digest fate notifications; survivors start the next iteration."""
        active: set[int] = ctx.state["active_nbrs"]
        mis_neighbor = False
        for sender, payload in inbox.items():
            if payload[0] != "fate":
                continue
            if payload[1] == _IN_MIS:
                mis_neighbor = True
                active.discard(sender)
            elif payload[1] == _OUT:
                active.discard(sender)
        if ctx.state["status"] == _IN_MIS:
            ctx.halt()
            return None
        if mis_neighbor:
            ctx.state["status"] = _OUT
            ctx.halt()
            # Last breath: tell remaining active neighbors we are out so
            # they stop waiting for our bids.
            return {v: ("fate", _OUT) for v in active}
        active_now = set(active)
        ctx.state["active_nbrs"] = active_now
        ctx.state["iteration"] += 1
        ctx.state["phase"] = "propose"
        if not active_now:  # all neighbors decided, none in MIS -> join
            ctx.state["status"] = _IN_MIS
            ctx.halt()
            return None
        priority = self._draw(ctx.node, ctx.state["iteration"])
        ctx.state["priority"] = priority
        return {v: ("bid", priority) for v in active_now}

    def output(self, ctx: NodeContext) -> bool:
        """Whether this node is in the MIS."""
        return ctx.state["status"] == _IN_MIS
