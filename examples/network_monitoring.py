"""In-network monitoring over the spanner topology.

Run:  python examples/network_monitoring.py

End-to-end protocol stack on one deployment: build the spanner topology
with the distributed relaxed greedy protocol, elect a coordinator on the
*spanner* (max-id flooding), grow a BFS tree from it, and convergecast a
network statistic (total transmit power) up the tree -- the classic
"what do we run on the controlled topology afterwards" story, with every
stage's round cost on one bill.
"""

from repro.distributed import (
    BFSTree,
    ConvergecastSum,
    DistributedRelaxedGreedy,
    LeaderElection,
    SynchronousNetwork,
)
from repro.extensions.power_cost import power_assignment
from repro.geometry.sampling import uniform_points
from repro.graphs.build import build_udg
from repro.params import SpannerParams


def main() -> None:
    points = uniform_points(150, seed=61, expected_degree=8.0)
    network = build_udg(points)
    print(f"network: n={network.num_vertices}, m={network.num_edges}")

    # Stage 1: topology control (Section 3 protocol).
    params = SpannerParams.from_epsilon(0.5)
    build = DistributedRelaxedGreedy(params, seed=2).build(
        network, points.distance
    )
    spanner = build.spanner
    print(f"stage 1 - spanner: {spanner.num_edges} links, "
          f"{build.total_rounds} rounds")

    # Stage 2: elect a coordinator over the spanner.
    election = SynchronousNetwork(spanner).run(
        LeaderElection(rounds=spanner.num_vertices)
    )
    leader = election.outputs[0]
    print(f"stage 2 - leader {leader} elected in {election.rounds} rounds "
          f"({election.messages} messages)")

    # Stage 3: BFS tree rooted at the coordinator.  Patience bounds how
    # long nodes outside the coordinator's component wait before giving
    # up (the deployment may be disconnected).
    bfs = SynchronousNetwork(spanner).run(
        BFSTree(leader, patience=spanner.num_vertices)
    )
    parents = {
        v: parent
        for v, (level, parent) in bfs.outputs.items()
        if level is not None
    }
    depth = max(level for level, _ in bfs.outputs.values() if level is not None)
    outside = spanner.num_vertices - len(parents)
    print(f"stage 3 - BFS tree: depth {depth}, {bfs.rounds} rounds"
          + (f" ({outside} nodes outside the monitored component)"
             if outside else ""))

    # Stage 4: convergecast the total transmit power of the topology.
    power = power_assignment(spanner)
    agg = SynchronousNetwork(spanner).run(
        ConvergecastSum(parents, {v: power[v] for v in parents})
    )
    print(f"stage 4 - total transmit power {agg.outputs[leader]:.3f} "
          f"aggregated in {agg.rounds} rounds")

    total = build.total_rounds + election.rounds + bfs.rounds + agg.rounds
    print(f"whole stack: {total} synchronous rounds")


if __name__ == "__main__":
    main()
