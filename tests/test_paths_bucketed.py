"""Bucketed delta-stepping ball kernel: bit-equality pins.

``multi_source_ball_lists`` now runs bucketed delta-stepping; this
suite pins it bit-for-bit against the retained label-correcting
reference (and, transitively, against scalar Dijkstra, which the
reference is already pinned to elsewhere) across cutoff regimes, the
empty/degenerate corners and the native two-layer tail path.
"""

import numpy as np
import pytest

import repro.graphs.paths as paths_mod
from repro.geometry.sampling import uniform_points
from repro.graphs.build import build_udg
from repro.graphs.graph import Graph
from repro.graphs.paths import (
    multi_source_ball_lists,
    multi_source_ball_lists_reference,
)


def _assert_bit_identical(got, want):
    for a, b in zip(got, want):
        assert a.dtype == b.dtype
        assert a.shape == b.shape
        assert a.tobytes() == b.tobytes()  # bit-for-bit, floats included


class TestBucketedEquality:
    @pytest.mark.parametrize(
        "n,side,cutoff",
        [
            (200, 4.0, 0.7),
            (500, 8.0, 1.5),
            (300, 3.0, 0.0),  # zero cutoff: balls are the sources
            (400, 20.0, 2.5),  # sparse, many components
            (250, 5.0, 50.0),  # cutoff beyond the diameter
        ],
    )
    def test_matches_reference(self, n, side, cutoff):
        pts = uniform_points(n, seed=n % 97, side=side)
        g = build_udg(pts)
        rng = np.random.default_rng(n)
        srcs = rng.choice(n, size=min(n, 64), replace=False)
        _assert_bit_identical(
            multi_source_ball_lists(g, srcs, cutoff),
            multi_source_ball_lists_reference(g, srcs, cutoff),
        )

    def test_duplicate_sources(self):
        pts = uniform_points(120, seed=5, side=3.0)
        g = build_udg(pts)
        srcs = [4, 4, 17, 4]
        _assert_bit_identical(
            multi_source_ball_lists(g, srcs, 0.9),
            multi_source_ball_lists_reference(g, srcs, 0.9),
        )

    def test_empty_sources(self):
        g = Graph(10)
        _assert_bit_identical(
            multi_source_ball_lists(g, [], 1.0),
            multi_source_ball_lists_reference(g, [], 1.0),
        )

    def test_native_tail_path(self, monkeypatch):
        # Force the two-layer native path so tail edges relax as extra
        # per-band candidates in both kernels.
        monkeypatch.setattr(paths_mod, "_TAIL_NATIVE_MIN_NNZ", 0)
        pts = uniform_points(300, seed=31, side=4.0)
        g = build_udg(pts)
        g.csr_snapshot()  # freeze the base
        rng = np.random.default_rng(8)
        added = 0
        while added < 40:
            a, b = int(rng.integers(300)), int(rng.integers(300))
            if a != b and not g.has_edge(a, b):
                g.add_edge(a, b, float(rng.uniform(0.05, 0.4)))
                added += 1
        assert g.csr_snapshot().has_tail
        srcs = rng.choice(300, size=48, replace=False)
        _assert_bit_identical(
            multi_source_ball_lists(g, srcs, 1.2),
            multi_source_ball_lists_reference(g, srcs, 1.2),
        )

    def test_reentrant_band_convergence(self):
        # A long chain of short edges forces many re-relaxations inside
        # one distance band (the delta-stepping "light edge" loop).
        g = Graph(64)
        for i in range(63):
            g.add_edge(i, i + 1, 0.001)
        g.add_edge(0, 63, 0.9)  # a heavy shortcut, later improved past
        _assert_bit_identical(
            multi_source_ball_lists(g, [0], 1.0),
            multi_source_ball_lists_reference(g, [0], 1.0),
        )
