"""Tests for the experiment suite: every experiment runs quick and passes.

These are the executable acceptance criteria of the reproduction: each
experiment's ``passed`` flag asserts the *shape* of the paper claim it
reproduces (see DESIGN.md section 4).
"""

import pytest

from repro.experiments import (
    EXPERIMENT_REGISTRY,
    WORKLOAD_NAMES,
    make_workload,
    run_all,
)
from repro.experiments.e4_rounds import log_star
from repro.experiments.runner import ExperimentResult, format_table
from repro.exceptions import GraphError


class TestWorkloads:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_workload_builds(self, name):
        w = make_workload(name, 40, seed=1)
        assert w.n == 40
        assert w.graph.num_vertices == 40
        assert w.graph.max_edge_weight() <= 1.0 + 1e-9

    def test_unknown_workload(self):
        with pytest.raises(GraphError):
            make_workload("nope", 10)

    def test_alpha_policy_strings(self):
        for policy in ("bernoulli", "decay"):
            w = make_workload("uniform", 40, seed=2, alpha=0.7, policy=policy)
            assert w.alpha == 0.7

    def test_determinism(self):
        a = make_workload("clustered", 50, seed=3)
        b = make_workload("clustered", 50, seed=3)
        assert a.graph == b.graph

    def test_3d_dimension(self):
        assert make_workload("uniform3d", 30, seed=4).dim == 3


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENT_REGISTRY) == {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10",
            "E11", "E12", "F", "A", "X1",
        }

    @pytest.mark.parametrize("name", sorted(EXPERIMENT_REGISTRY))
    def test_experiment_passes_quick(self, name):
        """Each experiment's claim-shape holds in quick mode."""
        result = EXPERIMENT_REGISTRY[name](quick=True, seed=3)
        assert isinstance(result, ExperimentResult)
        assert result.rows, f"{name} produced no rows"
        assert result.passed, f"{name} failed:\n{result.to_text()}"

    def test_run_all_collects_everything(self):
        results = run_all(quick=True, seed=5)
        assert len(results) == len(EXPERIMENT_REGISTRY)


class TestRendering:
    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_table_alignment(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 30, "c": True}])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "b", "c"]
        assert "yes" in text

    def test_to_markdown_structure(self):
        result = ExperimentResult("EX", "claim", rows=[{"x": 1}])
        md = result.to_markdown()
        assert "### EX: claim" in md
        assert "| x |" in md
        assert "**Verdict: PASS**" in md

    def test_to_text_verdict(self):
        result = ExperimentResult("EX", "claim", rows=[{"x": 1}], passed=False)
        assert "verdict: FAIL" in result.to_text()


class TestLogStar:
    def test_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4
