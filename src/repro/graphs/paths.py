"""Shortest-path and hop-bounded search primitives.

The relaxed greedy algorithm issues three kinds of path queries:

* full single-source Dijkstra (cluster-cover construction, Section 2.2.1);
* *bounded* Dijkstra with a distance cutoff -- most queries only need to
  know whether some path of length ``<= t * |xy|`` exists, so the search
  may stop as soon as the frontier passes the cutoff (this is the lazy
  early-exit that makes the sequential algorithm fast);
* hop-bounded BFS (the distributed algorithm's "gather information from
  ``<= k`` hops away" primitive, Theorem 9 / Section 3).

The dict-based primitives remain the reference implementations for single
queries.  Three array kernels answer whole batches of sources over
:meth:`repro.graphs.graph.Graph.csr`:

* :func:`multi_source_distances` -- dense ``(k, n)`` rows from one
  C-level :func:`scipy.sparse.csgraph.dijkstra` call; best when balls
  are wide (the O(n) row setup amortizes);
* :func:`multi_source_ball_lists` -- the sparse *frontier-sharing*
  search: every source relaxes together as one flat frontier, total
  work O(ball mass); best in the tiny-cutoff regimes that dominate the
  relaxed greedy phases;
* :func:`grow_balls_in_order` -- the sequential ball-growing kernel of
  the cluster cover, batching speculative candidate balls through
  either search while committing centers in exact scan order.

:func:`prefer_batched_sources` probes one ball to pick the dense-vs-
sparse side of that trade per call site.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Sequence

import numpy as np

from ..arrayops import run_expand
from ..exceptions import GraphError, NotReachableError
from .graph import Graph

__all__ = [
    "dijkstra",
    "dijkstra_distance",
    "detour_distance",
    "bfs_hops",
    "k_hop_neighborhood",
    "k_hop_subgraph",
    "shortest_path_tree",
    "grow_balls_in_order",
    "multi_source_ball_lists",
    "multi_source_ball_lists_reference",
    "multi_source_distances",
    "multi_source_trees",
    "pair_distances",
    "pair_distance_matrix",
    "NO_PREDECESSOR",
]

#: Sentinel scipy's csgraph uses for "no predecessor" in tree arrays.
NO_PREDECESSOR = -9999

#: Soft bound on floats held by one batched distance block (rows x n).
_BLOCK_ENTRIES = 4_000_000

#: Directed-entry count past which the sparse kernel consumes the
#: two-layer snapshot natively instead of merging base + tail: below
#: it one C-level merge costs less than per-round tail lookups; above
#: it the O(m) merge is the dominant cost the tail layer exists to skip.
_TAIL_NATIVE_MIN_NNZ = 65_536

#: Bucket count of the delta-stepping ball kernel: the cutoff range is
#: split into this many distance bands processed in ascending order.
_BALL_BUCKETS = 16


def _check_sources(graph: Graph, sources: Sequence[int]) -> np.ndarray:
    idx = np.asarray(sources, dtype=np.int64)
    if idx.ndim != 1:
        raise GraphError("sources must be a one-dimensional sequence")
    n = graph.num_vertices
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        bad = idx[(idx < 0) | (idx >= n)][0]
        raise GraphError(f"vertex {int(bad)} out of range [0, {n})")
    return idx


def source_block_size(graph: Graph) -> int:
    """Number of sources per batched-dijkstra block that keeps one block's
    distance matrix around :data:`_BLOCK_ENTRIES` floats (memory cap).

    Independent of the two-layer snapshot state: block width is a memory
    bound on the dense output rows, not on the matrix -- the tail's cost
    is handled by :func:`prefer_batched_sources` instead.
    """
    return max(1, _BLOCK_ENTRIES // max(1, graph.num_vertices))


def prefer_batched_sources(
    graph: Graph, sources: Sequence[int], cutoff: float | None
) -> bool:
    """Whether a batched C-level Dijkstra beats the sparse/dict kernels.

    The batched kernel pays O(n) dense-output setup per source; the
    sparse kernels pay O(ball size) work per source.  Probing one ball
    from the first source puts the query on the right side of that
    trade: batched wins once balls exceed roughly n/64 vertices (the
    measured numpy-vs-Python constant gap), and always wins for
    unbounded queries.  The probe ball is discarded -- re-searching one
    small ball in the scalar fallback is noise next to the k that follow.

    Two-layer awareness: when the graph's full CSR matrix is stale
    (appended edges still live in the snapshot tail), the dense kernel
    must first pay the O(m) base + tail merge that the sparse kernels
    skip, so modest batches of modest balls stay on the sparse side
    until the dense rows themselves (``k * ball``) amortize a merge of
    ``m`` edges.  The micro-probe suite pins this crossover.

    Probe outcomes are cached on the graph keyed by ``(revision,
    merge-pending, cutoff band)`` -- the band is the cutoff's binary
    exponent -- so the phase loops, which re-probe the same radius
    against an unchanged spanner many times per phase, pay the Dijkstra
    probe once.  Any edge mutation (or a CSR merge, which flips the
    merge-pending term) starts a fresh key; hit/miss counters surface in
    the builders' reports via :meth:`Graph.probe_cache_stats`.
    """
    if cutoff is None:
        return True
    if len(sources) <= 1 or graph.num_vertices < 256:
        return True  # too small for the constants to matter
    key = (
        graph.revision,
        graph.csr_merge_pending(),
        math.frexp(cutoff)[1],
    )
    cache = graph._probe_cache
    cached = cache.get(key)
    if cached is not None:
        graph._probe_hits += 1
        return cached
    graph._probe_misses += 1
    outcome = True
    ball = dijkstra(graph, sources[0], cutoff=cutoff)
    if len(ball) * 64 < graph.num_vertices:
        outcome = False
    elif graph.csr_merge_pending() and len(sources) * len(ball) < graph.num_edges:
        # Same crossover the sparse kernel applies: only a base past the
        # nnz threshold makes its native-tail path (and hence the merge
        # avoidance) real; below it the merge is trivial either way.
        if graph.csr_snapshot().base.nnz >= _TAIL_NATIVE_MIN_NNZ:
            outcome = False  # dense would pay a non-trivial tail merge
    if len(cache) >= 4096:  # stale revisions dominate eventually
        cache.clear()
    cache[key] = outcome
    return outcome


def multi_source_distances(
    graph: Graph,
    sources: Sequence[int],
    *,
    cutoff: float | None = None,
    unweighted: bool = False,
) -> np.ndarray:
    """Shortest-path distances from each source as a ``(k, n)`` array.

    Row ``i`` holds ``sp(sources[i], .)``; unreachable vertices (or
    vertices strictly beyond ``cutoff``) hold ``inf``.  With
    ``unweighted=True`` distances are hop counts (BFS levels) instead of
    weighted lengths.  Equivalent to ``k`` calls of :func:`dijkstra` but
    executed as one C-level batch over the cached CSR snapshot.
    """
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    idx = _check_sources(graph, sources)
    n = graph.num_vertices
    if idx.size == 0:
        return np.empty((0, n), dtype=np.float64)
    limit = np.inf if cutoff is None else float(cutoff)
    if cutoff is not None and cutoff < 0.0:
        raise GraphError(f"cutoff must be >= 0, got {cutoff}")
    mat = graph.csr()
    rows = sp_dijkstra(
        mat, directed=False, indices=idx, limit=limit, unweighted=unweighted
    )
    return rows.reshape(idx.size, n)


def pair_distances(
    graph: Graph,
    us: np.ndarray,
    vs: np.ndarray,
    *,
    cutoff: float | None = None,
) -> np.ndarray:
    """Shortest-path distances for aligned endpoint arrays.

    ``out[i] = sp(us[i], vs[i])`` (``inf`` when unreachable, or beyond
    ``cutoff``) -- the graph-metric analogue of a distance oracle's
    batched ``pairs`` query, and the single kernel behind query
    answering and redundancy detection.  Sources group into blocked
    dense multi-source batches when balls are wide; with a ``cutoff``
    in the tiny-ball regime the frontier-sharing sparse search runs
    instead (see :func:`prefer_batched_sources`).  Both branches fill
    identical floats.  Callers holding a structured cross product
    should use :func:`pair_distance_matrix` instead of materializing
    the k x t aligned arrays here.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if us.shape != vs.shape or us.ndim != 1:
        raise GraphError("endpoint arrays must be aligned one-dimensional")
    _check_sources(graph, vs)
    src = np.unique(us)
    if cutoff is None or prefer_batched_sources(graph, src, cutoff):
        out = np.empty(us.shape[0], dtype=np.float64)
        block = source_block_size(graph)
        for lo in range(0, src.size, block):
            chunk = src[lo : lo + block]
            rows = multi_source_distances(graph, chunk, cutoff=cutoff)
            sel = (us >= chunk[0]) & (us <= chunk[-1])
            out[sel] = rows[np.searchsorted(chunk, us[sel]), vs[sel]]
        return out
    # Tiny balls: sparse frontier-sharing search, then key lookups.
    starts, ball_v, ball_d = multi_source_ball_lists(graph, src, cutoff)
    n = np.int64(graph.num_vertices)
    keys = (
        np.repeat(np.arange(src.size, dtype=np.int64), np.diff(starts)) * n
        + ball_v
    )
    want = np.searchsorted(src, us) * n + vs
    pos = np.searchsorted(keys, want)
    in_range = pos < keys.size
    safe = np.where(in_range, pos, 0)
    found = in_range & (keys[safe] == want)
    return np.where(found, ball_d[safe], np.inf)


def pair_distance_matrix(
    graph: Graph,
    sources: np.ndarray,
    targets: np.ndarray,
    *,
    cutoff: float | None = None,
) -> np.ndarray:
    """``D[i, j] = sp(sources[i], targets[j])`` within ``cutoff``.

    The cross-product form of :func:`pair_distances`: one call fills a
    whole ``(k, t)`` distance matrix (``inf`` beyond ``cutoff`` or when
    unreachable).  Dense blocked multi-source rows gather the target
    columns when balls are wide; in the tiny-cutoff regime the
    frontier-sharing sparse search scatters each ball into its row
    instead (O(ball mass), no per-cell lookups).  Both branches fill
    identical floats.  ``targets`` must not contain duplicates (the
    scatter keys columns by target id).
    """
    src = np.asarray(sources, dtype=np.int64)
    tgt = np.asarray(targets, dtype=np.int64)
    _check_sources(graph, tgt)
    if cutoff is None or prefer_batched_sources(graph, src, cutoff):
        out = np.empty((src.size, tgt.size), dtype=np.float64)
        block = source_block_size(graph)
        for lo in range(0, src.size, block):
            rows = multi_source_distances(
                graph, src[lo : lo + block], cutoff=cutoff
            )
            out[lo : lo + rows.shape[0]] = rows[:, tgt]
        return out
    out = np.full((src.size, tgt.size), np.inf, dtype=np.float64)
    starts, ball_v, ball_d = multi_source_ball_lists(graph, src, cutoff)
    pos_of = np.full(graph.num_vertices, -1, dtype=np.int64)
    pos_of[tgt] = np.arange(tgt.size, dtype=np.int64)
    rows_idx = np.repeat(np.arange(src.size, dtype=np.int64), np.diff(starts))
    cols = pos_of[ball_v]
    hit = cols >= 0
    out[rows_idx[hit], cols[hit]] = ball_d[hit]
    return out


def _ball_search_setup(graph: Graph, sources: Sequence[int], cutoff: float):
    """Shared preamble of the sparse ball kernels.

    Validates inputs and resolves the two-layer snapshot policy: base
    CSR rows expand natively with tail edges as extra per-round
    candidates once the base is past the nnz crossover, else the
    (cached) merged matrix is used -- identical relaxation multisets
    either way (see :func:`multi_source_ball_lists`).
    """
    idx = _check_sources(graph, sources)
    if cutoff < 0.0:
        raise GraphError(f"cutoff must be >= 0, got {cutoff}")
    snap = graph.csr_snapshot()
    has_tail = snap.has_tail and snap.base.nnz >= _TAIL_NATIVE_MIN_NNZ
    mat = snap.base if has_tail else snap.matrix()
    indptr = np.asarray(mat.indptr, dtype=np.int64)
    indices = np.asarray(mat.indices, dtype=np.int64)
    weights = np.asarray(mat.data, dtype=np.float64)
    return idx, snap, has_tail, indptr, indices, weights


def _relax_frontier(
    f_keys: np.ndarray,
    f_d: np.ndarray,
    n: np.int64,
    cutoff: float,
    snap,
    has_tail: bool,
    indptr: np.ndarray,
    indices: np.ndarray,
    weights: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """One relaxation sweep: expand every frontier ``(key, dist)`` pair
    through its CSR row (plus tail edges), prune past the cutoff, and
    reduce to the minimum per key.  Returns sorted ``(keys, dists)``.
    """
    fv = f_keys % n
    deg = indptr[fv + 1] - indptr[fv]
    eidx = run_expand(indptr[fv], deg)
    nd = np.repeat(f_d, deg) + weights[eidx]
    nk = (f_keys - fv)[np.repeat(
        np.arange(f_keys.size, dtype=np.int64), deg
    )] + indices[eidx]
    if has_tail:
        t_deg, t_dst, t_w = snap.tail_neighbors(fv)
        t_nd = np.repeat(f_d, t_deg) + t_w
        t_nk = (f_keys - fv)[np.repeat(
            np.arange(f_keys.size, dtype=np.int64), t_deg
        )] + t_dst
        nd = np.concatenate([nd, t_nd])
        nk = np.concatenate([nk, t_nk])
    keep = nd <= cutoff
    nk, nd = nk[keep], nd[keep]
    if nk.size == 0:
        return nk, nd
    # Minimum per (slot, vertex) among this sweep's relaxations; the
    # sort is over the sweep's candidates only, never the label table.
    order = np.argsort(nk, kind="stable")
    nk, nd = nk[order], nd[order]
    first = np.ones(nk.size, dtype=bool)
    first[1:] = nk[1:] != nk[:-1]
    nd = np.minimum.reduceat(nd, np.flatnonzero(first))
    return nk[first], nd


def multi_source_ball_lists(
    graph: Graph, sources: Sequence[int], cutoff: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Sparse bounded multi-source search: every ball in one pass.

    The frontier-sharing kernel of the construction pipeline, run as
    *bucketed delta-stepping*: the ``[0, cutoff]`` range splits into
    :data:`_BALL_BUCKETS` distance bands processed in ascending order,
    and each band's frontier of ``(source-slot, vertex, dist)`` pairs
    relaxes over the CSR snapshot until the band drains (short edges
    re-enter the current band, longer ones land in later ones).  Total
    work is O(ball mass) like the label-correcting reference, but each
    label now settles after O(1) expansions instead of once per
    improvement, and the label table grows by *linear merges*
    (``np.insert`` at presorted positions) -- the reference's
    O(B log B) full re-sort of the table per round is gone, which is
    what the ROADMAP's construction-scaling item asked for.  Stale
    band entries (labels improved after enqueue) are dropped lazily on
    dequeue by comparing against the table.

    Converges to the exact Dijkstra fixpoint over the same float
    weights as :func:`multi_source_ball_lists_reference` -- both take
    minima over the identical multiset of head-to-tail float path sums
    (positive weights make the cutoff prefix-prune lossless and keep
    band targets monotone) -- so the output is bit-identical to the
    reference, to :func:`dijkstra` and to
    :func:`multi_source_distances`; the equivalence suite pins all
    three.

    Returns
    -------
    (starts, vertices, dists)
        CSR-style segments: ``vertices[starts[i]:starts[i+1]]`` is the
        ball of ``sources[i]`` -- every vertex with ``sp(sources[i], v)
        <= cutoff`` -- sorted ascending, with aligned ``dists``.
    """
    idx, snap, has_tail, indptr, indices, weights = _ball_search_setup(
        graph, sources, cutoff
    )
    k = idx.size
    n = np.int64(graph.num_vertices)
    if k == 0:
        return (
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    best_keys = np.arange(k, dtype=np.int64) * n + idx
    best_d = np.zeros(k, dtype=np.float64)
    delta = cutoff / _BALL_BUCKETS if cutoff > 0.0 else 1.0
    pend: list[list[tuple[np.ndarray, np.ndarray]]] = [
        [] for _ in range(_BALL_BUCKETS)
    ]
    pend[0].append((best_keys.copy(), best_d.copy()))
    for band in range(_BALL_BUCKETS):
        while pend[band]:
            chunks, pend[band] = pend[band], []
            f_keys = np.concatenate([c[0] for c in chunks])
            f_d = np.concatenate([c[1] for c in chunks])
            # Lazy stale-drop: an entry whose label improved after it
            # was enqueued no longer matches the table and is skipped
            # (every enqueued key is already in the table, so the
            # lookup never misses).
            pos = np.searchsorted(best_keys, f_keys)
            live = best_d[pos] == f_d
            f_keys, f_d = f_keys[live], f_d[live]
            if f_keys.size == 0:
                continue
            # Dedupe same-band duplicates of one key (equal dists).
            order = np.argsort(f_keys, kind="stable")
            f_keys, f_d = f_keys[order], f_d[order]
            first = np.ones(f_keys.size, dtype=bool)
            first[1:] = f_keys[1:] != f_keys[:-1]
            f_keys, f_d = f_keys[first], f_d[first]
            nk, nd = _relax_frontier(
                f_keys, f_d, n, cutoff, snap, has_tail,
                indptr, indices, weights,
            )
            if nk.size == 0:
                continue
            # Compare against the label table (strict improvement only).
            pos = np.searchsorted(best_keys, nk)
            in_range = pos < best_keys.size
            safe = np.where(in_range, pos, 0)
            known = in_range & (best_keys[safe] == nk)
            improved = known & (nd < best_d[safe])
            best_d[safe[improved]] = nd[improved]
            fresh = ~known
            if fresh.any():
                ins = np.searchsorted(best_keys, nk[fresh])
                best_keys = np.insert(best_keys, ins, nk[fresh])
                best_d = np.insert(best_d, ins, nd[fresh])
            out_k = np.concatenate([nk[improved], nk[fresh]])
            out_d = np.concatenate([nd[improved], nd[fresh]])
            if out_k.size == 0:
                continue
            # Positive weights keep targets monotone: nd > f_d >=
            # band * delta, so no entry lands in a drained band.
            target = np.minimum(
                (out_d / delta).astype(np.int64), _BALL_BUCKETS - 1
            )
            for b in np.unique(target).tolist():
                sel = target == b
                pend[b].append((out_k[sel], out_d[sel]))
    slots = best_keys // n
    starts = np.searchsorted(slots, np.arange(k + 1, dtype=np.int64))
    return starts, best_keys % n, best_d


def multi_source_ball_lists_reference(
    graph: Graph, sources: Sequence[int], cutoff: float
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Label-correcting reference of :func:`multi_source_ball_lists`.

    All ``sources`` relax together as one flat frontier (expand every
    frontier pair through its CSR row, keep improvements, repeat until
    no label improves), re-sorting the whole label table on every
    merge.  Kept as the semantic anchor the bucketed kernel is pinned
    bit-identical against.

    Converges to the exact Dijkstra fixpoint over the same float
    weights (both compute the minimum over head-to-tail float path
    sums; positive weights make the cutoff prefix-prune lossless), so
    distances are bit-identical to :func:`dijkstra` /
    :func:`multi_source_distances`.
    """
    idx, snap, has_tail, indptr, indices, weights = _ball_search_setup(
        graph, sources, cutoff
    )
    k = idx.size
    n = np.int64(graph.num_vertices)
    if k == 0:
        return (
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
        )
    # Known labels, keyed slot * n + vertex (sorted; slots ascend).
    best_keys = np.arange(k, dtype=np.int64) * n + idx
    best_d = np.zeros(k, dtype=np.float64)
    f_keys = best_keys.copy()
    f_d = best_d.copy()
    while f_keys.size:
        nk, nd = _relax_frontier(
            f_keys, f_d, n, cutoff, snap, has_tail,
            indptr, indices, weights,
        )
        if nk.size == 0:
            break
        # Compare against the known labels (strict improvement only).
        pos = np.searchsorted(best_keys, nk)
        in_range = pos < best_keys.size
        safe = np.where(in_range, pos, 0)
        known = in_range & (best_keys[safe] == nk)
        improved = known & (nd < best_d[safe])
        best_d[safe[improved]] = nd[improved]
        fresh = ~known
        if fresh.any():
            merged = np.concatenate([best_keys, nk[fresh]])
            merged_d = np.concatenate([best_d, nd[fresh]])
            order = np.argsort(merged, kind="stable")
            best_keys, best_d = merged[order], merged_d[order]
        f_keys = np.concatenate([nk[improved], nk[fresh]])
        f_d = np.concatenate([nd[improved], nd[fresh]])
    slots = best_keys // n
    starts = np.searchsorted(slots, np.arange(k + 1, dtype=np.int64))
    return starts, best_keys % n, best_d


def grow_balls_in_order(
    graph: Graph,
    radius: float,
    order: np.ndarray,
    *,
    universe_mask: np.ndarray | None = None,
    batch_start: int = 4,
) -> tuple[list[int], np.ndarray, np.ndarray]:
    """Batched sequential ball growing (the Section 2.2.1 kernel).

    Replays the paper's sequential center selection -- scan ``order``,
    the first still-uncovered vertex becomes a center, its cutoff-
    ``radius`` Dijkstra ball claims every still-uncovered vertex --
    but grows *speculative batches* of balls at once: the next ``b``
    uncovered candidates are solved in one C-level multi-source Dijkstra
    over the CSR snapshot, then committed strictly in order (a candidate
    claimed by an earlier ball of the same batch is discarded, wasting
    only its row).  The batch width adapts to the observed speculation
    success, so the kernel degrades gracefully when balls overlap.

    Bit-for-bit equal to the scalar reference (both compute the same
    Dijkstra fixpoint over the same float weights and commit in the same
    order); the equivalence suite pins this on randomized inputs.

    Parameters
    ----------
    graph:
        Graph to grow balls in (balls expand over *all* vertices).
    radius:
        Ball cutoff; claimed vertices satisfy ``sp(center, v) <= radius``.
    order:
        Center-candidate order (duplicates allowed; covered entries are
        skipped exactly like the scalar scan).
    universe_mask:
        Optional ``(n,)`` boolean mask restricting which vertices may be
        claimed (balls still grow through non-universe vertices).  An
        uncovered ``order`` entry outside the universe raises
        :class:`GraphError`, mirroring the scalar reference.
    batch_start:
        Initial speculative batch width.

    Returns
    -------
    (centers, center_of, dist)
        ``centers`` in selection order; ``center_of[v]`` is the claiming
        center (-1 if unclaimed); ``dist[v]`` is ``sp(center_of[v], v)``
        (``inf`` if unclaimed).
    """
    n = graph.num_vertices
    order_arr = np.asarray(order, dtype=np.int64)
    if order_arr.ndim != 1:
        raise GraphError("order must be a one-dimensional sequence")
    # An order entry outside the universe is never claimable, so the
    # scalar scan always reaches and rejects the first such entry.
    invalid = (order_arr < 0) | (order_arr >= n)
    safe = np.where(invalid, 0, order_arr)
    if universe_mask is not None:
        invalid |= ~universe_mask[safe]
    if invalid.any():
        bad = int(order_arr[int(np.argmax(invalid))])
        raise GraphError(f"order contains vertex {bad} outside the universe")

    centers: list[int] = []
    center_of = np.full(n, -1, dtype=np.int64)
    dist = np.full(n, np.inf, dtype=np.float64)
    covered = np.zeros(n, dtype=bool)
    cand_pos = np.full(n, -1, dtype=np.int64)
    # Wide balls favor the dense C-level rows, tiny balls the sparse
    # frontier-sharing search; both fill identical floats.
    dense = prefer_batched_sources(graph, order_arr.tolist(), radius)
    # Sparse searches cost O(ball mass), so speculation waste is cheap
    # and the batch can start wide; dense rows pay O(n) per candidate.
    batch = max(1, batch_start) if dense else max(batch_start, 256)
    cap = max(batch, source_block_size(graph))
    pos = 0
    total = order_arr.size
    while pos < total:
        rem = order_arr[pos:]
        cand_rel = np.flatnonzero(~covered[rem])
        if cand_rel.size == 0:
            break
        take = cand_rel[:batch]
        cand = rem[take]
        if dense:
            rows = multi_source_distances(graph, cand, cutoff=radius)
            bi, bv = np.nonzero(np.isfinite(rows))
            bd = rows[bi, bv]
        else:
            starts, bv, bd = multi_source_ball_lists(graph, cand, radius)
            bi = np.repeat(
                np.arange(cand.size, dtype=np.int64), np.diff(starts)
            )
        # Drop already-claimed vertices (balls still grew through them).
        live = ~covered[bv]
        bi, bv, bd = bi[live], bv[live], bd[live]

        # In-batch sequential center selection: candidate i is claimed
        # iff some earlier *center* j < i of this batch has i in its
        # ball.  Walk each candidate's (short) container list in order.
        cand_pos[cand] = np.arange(cand.size, dtype=np.int64)
        ci = cand_pos[bv]
        cont = (ci >= 0) & (bi < ci)
        if not cont.any():
            # No candidate lies in an earlier candidate's ball: the whole
            # batch commits as centers -- the common tiny-ball case.
            is_center = np.ones(cand.size, dtype=bool)
        else:
            cont_i, cont_j = ci[cont], bi[cont]
            order_c = np.lexsort((cont_j, cont_i))
            cont_i, cont_j = cont_i[order_c], cont_j[order_c]
            is_center = np.ones(cand.size, dtype=bool)
            # Only candidates with containers can lose; walk their
            # (short, ascending) container lists in candidate order.
            bounds = np.flatnonzero(
                np.concatenate(([True], cont_i[1:] != cont_i[:-1]))
            )
            ends = np.append(bounds[1:], cont_i.size)
            for i, lo, hi in zip(
                np.unique(cont_i).tolist(), bounds.tolist(), ends.tolist()
            ):
                for j in cont_j[lo:hi]:
                    if is_center[j]:
                        is_center[i] = False
                        break
        cand_pos[cand] = -1  # reset the scratch map
        centers.extend(cand[is_center].tolist())

        # Claims: every live ball vertex joins the *first* center (in
        # batch order) whose ball reaches it -- exactly the sequential
        # first-wins rule.
        win = is_center[bi]
        av, aj, ad = bv[win], bi[win], bd[win]
        if universe_mask is not None:
            in_u = universe_mask[av]
            av, aj, ad = av[in_u], aj[in_u], ad[in_u]
        order_a = np.lexsort((aj, av))
        av, aj, ad = av[order_a], aj[order_a], ad[order_a]
        first = np.ones(av.size, dtype=bool)
        first[1:] = av[1:] != av[:-1]
        av, aj, ad = av[first], aj[first], ad[first]
        center_of[av] = cand[aj]
        dist[av] = ad
        covered[av] = True

        pos += int(take[-1]) + 1
        # Adapt speculation width to the hit rate just observed.
        committed = int(np.count_nonzero(is_center))
        if committed == cand.size:
            batch = min(batch * 4, cap)
        elif 2 * committed < cand.size:
            batch = max(1, batch // 2)
    return centers, center_of, dist


def multi_source_trees(
    graph: Graph, sources: Sequence[int]
) -> tuple[np.ndarray, np.ndarray]:
    """Batched shortest-path trees: ``(dist, predecessors)`` arrays.

    Both are ``(k, n)``; ``predecessors[i, v]`` is the parent of ``v`` on
    a shortest path from ``sources[i]`` (:data:`NO_PREDECESSOR` for the
    source itself and for unreachable vertices).  Array analogue of
    :func:`shortest_path_tree` for whole batches of sources.
    """
    from scipy.sparse.csgraph import dijkstra as sp_dijkstra

    idx = _check_sources(graph, sources)
    n = graph.num_vertices
    if idx.size == 0:
        return (
            np.empty((0, n), dtype=np.float64),
            np.empty((0, n), dtype=np.int32),
        )
    dist, pred = sp_dijkstra(
        graph.csr(), directed=False, indices=idx, return_predecessors=True
    )
    return dist.reshape(idx.size, n), pred.reshape(idx.size, n)


def dijkstra(
    graph: Graph,
    source: int,
    *,
    cutoff: float | None = None,
    targets: set[int] | None = None,
) -> dict[int, float]:
    """Single-source shortest-path distances from ``source``.

    Parameters
    ----------
    graph:
        Graph with positive edge weights.
    source:
        Start vertex.
    cutoff:
        If given, vertices at distance strictly greater than ``cutoff``
        are not reported and the search stops once the frontier exceeds
        it.  This is the workhorse of every bounded query in the paper
        (cover radius ``delta*W``, query threshold ``t*|xy|`` ...).
    targets:
        If given, the search additionally stops once every target has been
        settled; only settled vertices are reported.

    Returns
    -------
    dict[int, float]
        Mapping ``vertex -> distance`` for every settled vertex (always
        includes ``source`` at distance 0).
    """
    graph._check_vertex(source)
    adj = graph._adj  # bound once: the loop pops thousands of times
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    remaining = set(targets) if targets is not None else None
    heap: list[tuple[float, int]] = [(0.0, source)]
    inf = float("inf")
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in adj[u].items():
            nd = d + w
            if cutoff is not None and nd > cutoff:
                continue
            if nd < dist.get(v, inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    if cutoff is not None:
        return {v: d for v, d in dist.items() if v in settled and d <= cutoff}
    return {v: d for v, d in dist.items() if v in settled}


def dijkstra_distance(
    graph: Graph, source: int, target: int, *, cutoff: float | None = None
) -> float:
    """Distance from ``source`` to ``target``.

    Returns ``inf`` when ``target`` is unreachable, or unreachable within
    ``cutoff``.  (Callers comparing against a threshold pass the threshold
    as ``cutoff`` and compare with ``<=``; an ``inf`` then simply fails
    the comparison, which is exactly the paper's query semantics.)

    This is the innermost kernel of the maintenance engine's promotion
    verdicts (tens of thousands of calls per churn epoch), so the
    target-directed loop is inlined rather than delegating to
    :func:`dijkstra`: it returns the moment ``target`` reaches the top
    of the heap and skips the settled-dict filtering a full
    single-source call pays on exit.  Identical floats either way.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    if source == target:
        return 0.0
    adj = graph._adj
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    inf = float("inf")
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            return d
        settled.add(u)
        for v, w in adj[u].items():
            nd = d + w
            if cutoff is not None and nd > cutoff:
                continue
            if nd < dist.get(v, inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return inf


def detour_distance(
    graph: Graph, source: int, target: int, *, cutoff: float | None = None
) -> float:
    """Distance from ``source`` to ``target`` avoiding their direct edge.

    Equals the ``source``-``target`` distance in ``G - st``: a shortest
    path through the edge ``st`` either *is* that edge or revisits an
    endpoint, so forbidding the single direct relaxation is equivalent
    to deleting the edge -- without paying the remove/re-add mutation
    (and the snapshot/tombstone churn it causes) on a live graph.  The
    maintenance engine's redundancy phase asks exactly this question
    for every surviving spanner edge, so the mutation-free form is the
    hot path.  Returns ``inf`` beyond ``cutoff`` or when no detour
    exists; the search is target-directed like :func:`dijkstra_distance`.
    """
    graph._check_vertex(source)
    graph._check_vertex(target)
    adj = graph._adj
    dist: dict[int, float] = {source: 0.0}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    inf = float("inf")
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        if u == target:
            return d
        settled.add(u)
        for v, w in adj[u].items():
            if u == source and v == target:
                continue  # the forbidden direct edge
            nd = d + w
            if cutoff is not None and nd > cutoff:
                continue
            if nd < dist.get(v, inf):
                dist[v] = nd
                heapq.heappush(heap, (nd, v))
    return inf


def bfs_hops(
    graph: Graph, source: int, *, max_hops: int | None = None
) -> dict[int, int]:
    """Hop counts from ``source`` via BFS.

    Parameters
    ----------
    max_hops:
        If given, exploration stops at this hop radius.

    Returns
    -------
    dict[int, int]
        ``vertex -> hops`` for every vertex within the radius.
    """
    graph._check_vertex(source)
    hops = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        if max_hops is not None and hops[u] >= max_hops:
            continue
        for v in graph.neighbors(u):
            if v not in hops:
                hops[v] = hops[u] + 1
                queue.append(v)
    return hops


def k_hop_neighborhood(graph: Graph, source: int, k: int) -> set[int]:
    """Vertices within ``k`` hops of ``source`` (including ``source``)."""
    if k < 0:
        raise GraphError(f"k must be >= 0, got {k}")
    return set(bfs_hops(graph, source, max_hops=k))


def k_hop_subgraph(graph: Graph, source: int, k: int) -> Graph:
    """Subgraph induced by the ``k``-hop neighborhood of ``source``.

    This is the "local view" a node obtains after ``k`` communication
    rounds in the LOCAL model (Section 3); vertex ids are preserved.
    """
    return graph.subgraph(k_hop_neighborhood(graph, source, k))


def shortest_path_tree(
    graph: Graph, source: int, *, cutoff: float | None = None
) -> tuple[dict[int, float], dict[int, int]]:
    """Dijkstra with parent pointers.

    Returns
    -------
    (dist, parent)
        ``dist`` as in :func:`dijkstra`; ``parent`` maps each settled
        vertex (except ``source``) to its predecessor on a shortest path.
    """
    graph._check_vertex(source)
    dist: dict[int, float] = {source: 0.0}
    parent: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        d, u = heapq.heappop(heap)
        if u in settled:
            continue
        settled.add(u)
        for v, w in graph.neighbor_items(u):
            nd = d + w
            if cutoff is not None and nd > cutoff:
                continue
            if nd < dist.get(v, float("inf")):
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    dist = {v: d for v, d in dist.items() if v in settled}
    parent = {v: p for v, p in parent.items() if v in dist}
    return dist, parent


def reconstruct_path(
    parent: dict[int, int], source: int, target: int
) -> list[int]:
    """Vertex sequence from ``source`` to ``target`` using ``parent``.

    Raises
    ------
    NotReachableError
        If ``target`` was not reached by the search that built ``parent``.
    """
    if target == source:
        return [source]
    if target not in parent:
        raise NotReachableError(f"no recorded path from {source} to {target}")
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def reconstruct_path_array(
    pred_row: np.ndarray, source: int, target: int
) -> list[int]:
    """Vertex sequence from ``source`` to ``target`` using one
    predecessor row of :func:`multi_source_trees`.

    Raises
    ------
    NotReachableError
        If ``target`` is unreachable from ``source`` in the tree.
    """
    if target == source:
        return [source]
    if int(pred_row[target]) == NO_PREDECESSOR:
        raise NotReachableError(f"no recorded path from {source} to {target}")
    path = [target]
    while path[-1] != source:
        path.append(int(pred_row[path[-1]]))
    path.reverse()
    return path


__all__.extend(["reconstruct_path", "reconstruct_path_array"])
