"""Equivalence suite for epoch-batched maintenance (ISSUE 10).

Four pins, mirroring the acceptance criteria:

* ``apply_epoch`` over events with **disjoint** dirty balls is
  bit-equal (same edge sets, identical float weights, base graph and
  spanner both) to applying the same events sequentially via
  ``apply`` -- coalescing buys amortization, never a different graph;
* a **single-event epoch** is bit-equal to the per-event path;
* a ``repair="rebuild"`` epoch is bit-equal to a from-scratch build on
  the post-epoch point set;
* the persistent cover cache's rows survive invalidation **bit-for-bit**
  against cold re-derivation (``cover_cache_audit``), and a cache-off
  session produces identical graphs.

Plus the stream/adapter plumbing that rides along: ``apply_stream``
batch-mode validation and grouping, ``events_from_fault_plan``'s
``epoch_by_time`` grouping, and the per-phase timing counters.
"""

import numpy as np
import pytest

from repro.core import (
    MaintenanceEvent,
    MaintenanceSession,
    events_from_fault_plan,
)
from repro.distributed.faults import FaultPlan
from repro.exceptions import ParameterError
from repro.experiments.workloads import make_mobility
from repro.geometry.points import PointSet
from repro.geometry.sampling import uniform_points


def edge_table(g):
    return {(u, v): w for u, v, w in g.edges()}


def session_state(session):
    return edge_table(session.graph), edge_table(session.spanner)


def make_session(seed, n=160, **kwargs):
    pts = uniform_points(n, dim=2, seed=seed, expected_degree=8.0)
    return MaintenanceSession(pts, 0.5, **kwargs), pts


def two_blob_session(seed, gap=60.0, blob=60, **kwargs):
    """Two dense blobs far beyond any dirty-ball diameter apart, so
    same-epoch events (one per blob) can never coalesce."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(0.0, 5.0, size=(blob, 2))
    b = rng.uniform(0.0, 5.0, size=(blob, 2)) + np.array([gap, 0.0])
    session = MaintenanceSession(PointSet(np.vstack([a, b])), 0.5, **kwargs)
    return session, blob


def blob_moves(session, blob, seed, time=0.0):
    """One move event inside each blob (disjoint dirty balls)."""
    rng = np.random.default_rng(seed)
    events = []
    for node in (int(rng.integers(blob)), blob + int(rng.integers(blob))):
        new = session.position(node) + rng.normal(0.0, 0.4, 2)
        events.append(MaintenanceEvent("move", node, tuple(new), time))
    return events


def churn_events(pts, seed, epochs=4, rate=0.05):
    model = make_mobility("flocking", pts.coords, seed=seed, speed=0.25)
    return [
        ev
        for e in range(epochs)
        for ev in model.step_events(rate, time=float(e))
    ]


class TestEpochEquivalence:
    @pytest.mark.parametrize("seed", range(3))
    def test_disjoint_balls_match_sequential_apply(self, seed):
        # resync_fraction=1.0 pins the *local* repair path: a blob is a
        # large fraction of this small instance, and an escalation to
        # rebuild would bypass the coalescing under test.
        batched, blob = two_blob_session(seed, resync_fraction=1.0)
        sequential, _ = two_blob_session(seed, resync_fraction=1.0)
        for t in range(4):
            events = blob_moves(batched, blob, seed=50 + seed + t, time=t)
            reports = batched.apply_epoch(events)
            for ev in events:
                sequential.apply(ev)
            # Far-apart balls must stay separate regions: every event
            # leads its own region, none is folded into another's.
            assert not any(r.coalesced for r in reports)
            assert not any(r.resync for r in reports)
        assert session_state(batched) == session_state(sequential)
        assert batched.verify()["ok"]

    @pytest.mark.parametrize("seed", range(3))
    def test_single_event_epoch_bit_equal(self, seed):
        batched, pts = make_session(seed)
        plain, _ = make_session(seed)
        rng = np.random.default_rng(200 + seed)
        lo, hi = pts.coords.min(axis=0), pts.coords.max(axis=0)
        for t in range(6):
            node = int(rng.choice(batched.alive_nodes()))
            new = np.clip(
                batched.position(node) + rng.normal(0.0, 0.3, 2), lo, hi
            )
            ev = MaintenanceEvent("move", node, tuple(new), float(t))
            (report,) = batched.apply_epoch([ev])
            assert not report.coalesced
            plain.apply(ev)
        assert session_state(batched) == session_state(plain)

    @pytest.mark.parametrize("seed", range(2))
    def test_rebuild_mode_epoch_bit_equal_to_scratch(self, seed):
        session, pts = make_session(seed, repair="rebuild")
        session.apply_stream(churn_events(pts, 30 + seed), batch="epoch")
        base_ref, result_ref = session.rebuild_reference()
        assert edge_table(session.graph) == edge_table(base_ref)
        assert edge_table(session.spanner) == edge_table(result_ref.spanner)

    def test_empty_epoch_is_a_noop(self):
        session, _ = make_session(0)
        before = session_state(session)
        assert session.apply_epoch([]) == []
        assert session_state(session) == before
        assert session.stats()["epochs"] == 0

    def test_unknown_event_kind_rejected(self):
        session, _ = make_session(0)
        with pytest.raises(ParameterError):
            session.apply_epoch([MaintenanceEvent("teleport", node=0)])


class TestCoverCache:
    @pytest.mark.parametrize("seed", range(2))
    def test_cached_rows_bit_equal_to_cold_rederivation(self, seed):
        # Large enough that dirty bins exceed the direct-query floor
        # (the cover cache only engages past _COVER_MIN_EDGES) and
        # dirty balls stay under the resync fraction.
        session, pts = make_session(seed, n=600)
        session.apply_stream(churn_events(pts, 40 + seed), batch="epoch")
        stats = session.stats()
        assert stats["cover_cache_hits"] > 0  # the cache actually worked
        # Every surviving row, re-derived cold, must match bit-for-bit.
        assert session.cover_cache_audit() == []

    @pytest.mark.parametrize("seed", range(2))
    def test_cache_off_session_bit_equal(self, seed):
        cached, pts = make_session(seed, n=600)
        cold, _ = make_session(seed, n=600, cover_cache=False)
        events = churn_events(pts, 60 + seed, epochs=2)
        cached.apply_stream(events, batch="epoch")
        cold.apply_stream(events, batch="epoch")
        assert cached.stats()["cover_cache_hits"] > 0
        assert cold.stats()["cover_cache_hits"] == 0
        assert session_state(cached) == session_state(cold)
        assert cached.verify()["ok"]


class TestStreamBatching:
    def test_batch_mode_validated(self):
        session, pts = make_session(0)
        with pytest.raises(ParameterError):
            session.apply_stream([], batch="minute")

    @pytest.mark.parametrize("batch", [None, "event"])
    def test_per_event_modes_identical(self, batch):
        a, pts = make_session(1)
        b, _ = make_session(1)
        events = churn_events(pts, 70, epochs=2)
        a.apply_stream(events, batch=batch)
        for ev in events:
            b.apply(ev)
        assert session_state(a) == session_state(b)

    def test_epoch_mode_groups_equal_times(self):
        session, pts = make_session(2)
        events = churn_events(pts, 80, epochs=3)
        reports = session.apply_stream(events, batch="epoch")
        assert len(reports) == len(events)
        stats = session.stats()
        assert stats["events"] == len(events)
        assert stats["epochs"] == 3  # one epoch per distinct timestamp
        assert session.verify()["ok"]

    def test_phase_counters_populate(self):
        # n large enough that repair stays local (resync short-circuits
        # before any phase timer starts).
        session, pts = make_session(3, n=600)
        session.apply_stream(churn_events(pts, 90), batch="epoch")
        stats = session.stats()
        phases = [
            stats["cover_s"],
            stats["promotion_s"],
            stats["redundancy_s"],
            stats["certification_s"],
        ]
        assert all(p >= 0.0 for p in phases)
        assert sum(phases) > 0.0
        assert sum(phases) <= stats["wall_s"] + 1e-9


class TestFaultPlanEpochs:
    def test_epoch_by_time_flattens_to_plain_stream(self):
        plan = FaultPlan(seed=9, crash_rate=0.2, recover_after=2.0)
        plain = events_from_fault_plan(plan, range(120), horizon=50.0)
        grouped = events_from_fault_plan(
            plan, range(120), horizon=50.0, epoch_by_time=True
        )
        assert [ev for group in grouped for ev in group] == list(plain)
        for group in grouped:
            assert len({ev.time for ev in group}) == 1

    def test_grouped_epochs_drive_apply_epoch(self):
        session, _ = make_session(4, n=120)
        plan = FaultPlan(seed=3, crash_rate=0.1, recover_after=2.0)
        grouped = events_from_fault_plan(
            plan, range(120), horizon=40.0, epoch_by_time=True
        )
        assert grouped  # the plan must actually schedule something
        applied = 0
        for group in grouped:
            applied += len(session.apply_epoch(group))
        assert applied == sum(len(g) for g in grouped)
        assert session.verify()["ok"]
