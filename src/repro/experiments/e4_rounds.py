"""E4 -- Section 3: round complexity O(log n * R_MIS).

Runs the distributed algorithm across sizes and decomposes the round
ledger into the per-phase O(1) gather term (Theorems 14, 17, 18, 19) and
the MIS term (Theorems 16, 21).  Shape checks:

* executed phases grow like O(log n) (they are bounded by the bin count
  ``m = ceil(log_r n)``);
* gather rounds per executed phase are bounded by a constant;
* total rounds / (phases * R_MIS-bound) stays bounded -- with the Luby
  substitution R_MIS = O(log n) w.h.p., so the reference curve is
  ``log^2 n``; the paper's KMW MIS would give ``log n * log* n``.

The full sweep reaches ``n = 10^4``: MIS invocations and phase-0
flooding execute on the engine's batch tier (all nodes stepped at once
over CSR mailbox arrays), which bills the identical rounds/messages as
the per-node reference tier while keeping the whole sweep tractable.
"""

from __future__ import annotations

import math

from ..distributed.dist_spanner import DistributedRelaxedGreedy
from ..graphs.analysis import measure_stretch
from ..params import SpannerParams
from .runner import ExperimentResult, register, stopwatch
from .workloads import make_workload

__all__ = ["run", "log_star"]


def log_star(n: float) -> int:
    """Iterated logarithm (base 2)."""
    count = 0
    while n > 1.0:
        n = math.log2(n)
        count += 1
    return count


@register("E4")
def run(
    quick: bool = False,
    seed: int = 0,
    *,
    scenarios: tuple[str, ...] | None = None,
    sizes: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Execute E4.

    ``scenarios``/``sizes`` override the built-in sweep (one workload
    pattern and the node counts) -- the sweep driver passes one cell at
    a time.
    """
    sizes = tuple(sizes) if sizes else (
        (48, 96) if quick else (96, 384, 1000, 5000, 10000)
    )
    scenario = scenarios[0] if scenarios else "uniform"
    eps = 0.5
    params = SpannerParams.from_epsilon(eps)
    result = ExperimentResult(
        experiment="E4",
        claim=(
            "Section 3: distributed algorithm needs O(log n) phases of "
            "O(1) gather rounds + MIS invocations"
        ),
        notes=(
            "MIS substituted: Luby (O(log n) w.h.p.) instead of KMW "
            "O(log* n) [11]; reference columns give both normalizations; "
            "protocol runs execute on the batch engine tier"
        ),
    )
    per_phase_gathers = []
    for n in sizes:
        workload = make_workload(scenario, n, seed=seed + n)
        row = {"n": n}
        with stopwatch(row):
            build = DistributedRelaxedGreedy(params, seed=seed).build(
                workload.graph, workload.points.distance
            )
            stretch = measure_stretch(
                workload.graph, build.spanner
            ).max_stretch
        ledger = build.ledger
        executed = len(build.phases)
        gather_per_phase = ledger.gather_rounds() / max(1, executed)
        per_phase_gathers.append(gather_per_phase)
        logn = math.log2(max(2, n))
        row.update(
            phases_executed=executed,
            bins_m=build.num_bins,
            rounds_total=ledger.total_rounds,
            rounds_gather=ledger.gather_rounds(),
            rounds_mis=ledger.mis_rounds(),
            mis_invocations=build.mis_invocations,
            messages=ledger.total_messages,
            gather_per_phase=gather_per_phase,
        )
        row["rounds/log2n*logstar"] = ledger.total_rounds / (
            logn * max(1, log_star(n))
        )
        row["rounds/log2n^2"] = ledger.total_rounds / (logn * logn)
        row["stretch_ok"] = stretch <= (1.0 + eps) * (1.0 + 1e-9)
        result.rows.append(row)
        result.passed &= stretch <= (1.0 + eps) * (1.0 + 1e-9)
    # O(1) gather rounds per phase: flat band.
    result.passed &= max(per_phase_gathers) <= min(per_phase_gathers) * 2.0 + 4.0
    return result
