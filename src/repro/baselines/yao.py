"""Yao and Theta graphs -- classical cone-based topology control.

The Yao graph [Yao 1982] partitions the plane around each node into ``k``
equal cones and keeps, per cone, the edge to the *nearest* neighbor in
that cone; the Theta graph keeps the neighbor minimizing the projection
onto the cone bisector.  Both are standard topology-control baselines: for
``k > 6`` they are spanners of the UDG restricted to each cone's
reachability, with stretch ``1/(1 - 2*sin(pi/k))`` in the complete-graph
setting, but they bound only *out*-degree, not total degree, and give no
weight guarantee -- exactly the gaps the paper's algorithm closes (E5).

These constructions are 2-D (cone partitions in higher dimensions need
Yao's simplicial machinery; the paper's own baseline comparisons [15] are
planar too).
"""

from __future__ import annotations

import math

from ..exceptions import GraphError
from ..geometry.points import PointSet
from ..graphs.graph import Graph

__all__ = ["yao_graph", "theta_graph", "yao_stretch_bound"]


def _check_2d(points: PointSet) -> None:
    if points.dim != 2:
        raise GraphError(
            f"cone-based constructions are 2-D only; got d={points.dim}"
        )


def yao_stretch_bound(k: int) -> float:
    """Classical stretch bound ``1/(1 - 2*sin(pi/k))`` (finite for k > 6)."""
    if k <= 6:
        return math.inf
    return 1.0 / (1.0 - 2.0 * math.sin(math.pi / k))


def _cone_index(dx: float, dy: float, k: int) -> int:
    angle = math.atan2(dy, dx) % (2.0 * math.pi)
    idx = int(angle / (2.0 * math.pi / k))
    return min(idx, k - 1)  # guard the 2*pi boundary


def yao_graph(base: Graph, points: PointSet, k: int = 8) -> Graph:
    """Yao graph of ``base``: nearest neighbor per cone, per node.

    Parameters
    ----------
    base:
        The communication graph (typically a UDG); only its edges are
        candidates, making this the "Yao topology control" variant used
        in ad-hoc network papers rather than the complete-graph original.
    points:
        2-D coordinates of the vertices.
    k:
        Number of cones (``>= 2``).
    """
    _check_2d(points)
    if k < 2:
        raise GraphError(f"need k >= 2 cones, got {k}")
    out = Graph(base.num_vertices)
    for u in base.vertices():
        best: dict[int, tuple[float, int]] = {}
        ux, uy = points[u]
        for v, w in base.neighbor_items(u):
            vx, vy = points[v]
            cone = _cone_index(vx - ux, vy - uy, k)
            entry = (w, v)
            if cone not in best or entry < best[cone]:
                best[cone] = entry
        for w, v in best.values():
            if not out.has_edge(u, v):
                out.add_edge(u, v, w)
    return out


def theta_graph(base: Graph, points: PointSet, k: int = 8) -> Graph:
    """Theta graph of ``base``: per cone, keep the neighbor with the
    smallest projection onto the cone's bisector."""
    _check_2d(points)
    if k < 2:
        raise GraphError(f"need k >= 2 cones, got {k}")
    out = Graph(base.num_vertices)
    cone_angle = 2.0 * math.pi / k
    for u in base.vertices():
        best: dict[int, tuple[float, int, float]] = {}
        ux, uy = points[u]
        for v, w in base.neighbor_items(u):
            vx, vy = points[v]
            dx, dy = vx - ux, vy - uy
            cone = _cone_index(dx, dy, k)
            bisector = (cone + 0.5) * cone_angle
            projection = dx * math.cos(bisector) + dy * math.sin(bisector)
            entry = (projection, v, w)
            if cone not in best or entry < best[cone]:
                best[cone] = entry
        for projection, v, w in best.values():
            if not out.has_edge(u, v):
                out.add_edge(u, v, w)
    return out
