"""Moderate-scale sanity runs.

These guard against super-linear blowups in the sequential pipeline: a
relaxed greedy build on ~1000 nodes must complete in seconds, and its
guarantees must hold at that scale too.  (The distributed simulator is
exercised at scale by the E4 bench instead -- per-phase protocol runs
dominate its cost.)
"""

import time

from repro.core.relaxed_greedy import build_spanner
from repro.geometry.sampling import uniform_points
from repro.graphs.analysis import lightness, measure_stretch
from repro.graphs.build import build_udg


class TestThousandNodes:
    def test_build_and_verify(self):
        points = uniform_points(1000, seed=12345, expected_degree=8.0)
        graph = build_udg(points)
        start = time.perf_counter()
        result = build_spanner(graph, points.distance, 0.5)
        elapsed = time.perf_counter() - start
        assert elapsed < 30.0, f"build took {elapsed:.1f}s"
        stretch = measure_stretch(graph, result.spanner).max_stretch
        assert stretch <= 1.5 * (1.0 + 1e-9)
        assert result.spanner.max_degree() <= 10
        assert lightness(graph, result.spanner) <= 4.0

    def test_phase_table_renders(self):
        points = uniform_points(300, seed=54321)
        graph = build_udg(points)
        result = build_spanner(graph, points.distance, 0.5)
        table = result.phase_table(max_rows=8)
        assert "phase" in table and "W_prev" in table
        assert "elided" in table  # more than 8 phases executed

    def test_empty_phase_table(self):
        from repro.graphs.graph import Graph

        result = build_spanner(Graph(3), lambda u, v: 5.0, 0.5)
        assert result.phase_table() == "(no executed phases)"
