"""Integration tests for the distributed relaxed greedy algorithm."""

import math

import pytest

from repro.distributed.dist_spanner import DistributedRelaxedGreedy
from repro.distributed.local_views import (
    covered_decision_from_view,
    gather_local_view,
    local_component_of_short_edges,
)
from repro.geometry.sampling import uniform_points
from repro.graphs.analysis import lightness, measure_stretch
from repro.graphs.build import build_qubg, build_udg
from repro.graphs.components import connected_components
from repro.graphs.graph import Graph
from repro.params import SpannerParams


@pytest.fixture(scope="module")
def dist_build(medium_udg, medium_points, params_half):
    return DistributedRelaxedGreedy(params_half, seed=5).build(
        medium_udg, medium_points.distance
    )


class TestGuarantees:
    def test_stretch(self, dist_build, medium_udg, params_half):
        stretch = measure_stretch(medium_udg, dist_build.spanner).max_stretch
        assert stretch <= params_half.t * (1.0 + 1e-9)

    def test_degree(self, dist_build):
        assert dist_build.spanner.max_degree() <= 10

    def test_lightness(self, dist_build, medium_udg):
        assert lightness(medium_udg, dist_build.spanner) <= 4.0

    def test_subgraph_of_input(self, dist_build, medium_udg):
        assert dist_build.spanner.is_subgraph_of(medium_udg)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_multiple_seeds(self, seed, params_half):
        points = uniform_points(80, seed=seed + 100)
        graph = build_udg(points)
        build = DistributedRelaxedGreedy(params_half, seed=seed).build(
            graph, points.distance
        )
        stretch = measure_stretch(graph, build.spanner).max_stretch
        assert stretch <= params_half.t * (1.0 + 1e-9)

    def test_alpha_ubg(self, params_half):
        points = uniform_points(80, seed=9)
        alpha = 0.7
        graph = build_qubg(points, alpha)
        params = SpannerParams.from_epsilon(0.5, alpha=alpha)
        build = DistributedRelaxedGreedy(params, seed=2).build(
            graph, points.distance
        )
        assert (
            measure_stretch(graph, build.spanner).max_stretch
            <= params.t * (1.0 + 1e-9)
        )


class TestLedger:
    def test_rounds_positive_and_decomposed(self, dist_build):
        ledger = dist_build.ledger
        assert ledger.total_rounds > 0
        assert (
            ledger.gather_rounds() + ledger.mis_rounds()
            == ledger.total_rounds
        )

    def test_every_executed_phase_charged(self, dist_build):
        charged = set(dist_build.ledger.rounds_by_phase())
        executed = {p.index for p in dist_build.phases}
        assert executed <= charged | {0}

    def test_per_phase_gather_constant(self, dist_build):
        """Theorems 17-19: the gather cost of a phase is O(1) rounds."""
        by_phase: dict[int, int] = {}
        for entry in dist_build.ledger.entries:
            if not entry.step.endswith(".mis"):
                by_phase[entry.phase] = by_phase.get(entry.phase, 0) + entry.rounds
        assert max(by_phase.values()) <= 40  # constant band for alpha=1

    def test_mis_invocations_at_most_two_per_phase(self, dist_build):
        assert dist_build.mis_invocations <= 2 * len(dist_build.phases)

    def test_summary_renders(self, dist_build):
        text = dist_build.ledger.summary()
        assert "total rounds" in text and "cover.mis" in text

    def test_phases_within_bins(self, dist_build):
        assert len(dist_build.phases) <= dist_build.num_bins + 1

    def test_charge_rejects_negative(self):
        from repro.distributed.ledger import RoundLedger
        from repro.exceptions import ProtocolError

        with pytest.raises(ProtocolError):
            RoundLedger().charge(0, "x", -1)


class TestMeasuredGather:
    def test_measured_messages_positive_same_result(self, params_half):
        points = uniform_points(50, seed=41)
        graph = build_udg(points)
        plain = DistributedRelaxedGreedy(params_half, seed=7).build(
            graph, points.distance
        )
        measured = DistributedRelaxedGreedy(
            params_half, seed=7, measure_gather_messages=True
        ).build(graph, points.distance)
        # Same spanner, same round bill; only the message column fills in.
        assert measured.spanner == plain.spanner
        assert measured.total_rounds == plain.total_rounds
        gather_msgs = sum(
            e.messages
            for e in measured.ledger.entries
            if e.step == "cover.gather"
        )
        assert gather_msgs > 0
        assert measured.ledger.total_messages > plain.ledger.total_messages


class TestScheduledEmptyPhases:
    def test_empty_phases_pay_cover_schedule(self, params_half):
        points = uniform_points(40, seed=31)
        graph = build_udg(points)
        lazy = DistributedRelaxedGreedy(params_half, seed=1).build(
            graph, points.distance
        )
        eager = DistributedRelaxedGreedy(
            params_half, seed=1, process_empty_phases=True
        ).build(graph, points.distance)
        assert eager.ledger.total_rounds >= lazy.ledger.total_rounds
        assert len(eager.phases) >= len(lazy.phases)
        # Guarantees unchanged.
        assert (
            measure_stretch(graph, eager.spanner).max_stretch
            <= params_half.t * (1 + 1e-9)
        )


class TestEdgeCases:
    def test_empty_graph(self, params_half):
        build = DistributedRelaxedGreedy(params_half).build(
            Graph(0), lambda u, v: 0.0
        )
        assert build.spanner.num_vertices == 0
        assert build.total_rounds == 0

    def test_edgeless_graph(self, params_half):
        build = DistributedRelaxedGreedy(params_half).build(
            Graph(5), lambda u, v: 10.0
        )
        assert build.spanner.num_edges == 0

    def test_single_edge(self, params_half):
        from repro.geometry.points import PointSet

        points = PointSet([[0.0, 0.0], [0.5, 0.0]])
        graph = build_udg(points)
        build = DistributedRelaxedGreedy(params_half).build(
            graph, points.distance
        )
        assert build.spanner.has_edge(0, 1)

    def test_overlong_edge_rejected(self, params_half):
        from repro.exceptions import GraphError

        g = Graph(2)
        g.add_edge(0, 1, 1.4)
        with pytest.raises(GraphError):
            DistributedRelaxedGreedy(params_half).build(g, lambda u, v: 1.4)


class TestLocality:
    """Executable versions of the paper's locality arguments."""

    def test_phase0_component_from_one_hop(self, small_udg, params_half):
        """Theorem 14: every node reconstructs its G_0 component from a
        1-hop view, exactly matching the global component."""
        w0 = params_half.w0(small_udg.num_vertices)
        short = [
            (u, v, w) for u, v, w in small_udg.edges() if w <= w0
        ]
        g0 = Graph(small_udg.num_vertices)
        for u, v, w in short:
            g0.add_edge(u, v, w)
        global_comps = {
            frozenset(c) for c in connected_components(g0) if len(c) > 1
        }
        for comp in global_comps:
            for node in comp:
                local = local_component_of_short_edges(
                    small_udg, short, node
                )
                assert frozenset(local) == comp

    def test_covered_decision_local(
        self, medium_udg, medium_points, medium_build, params_half
    ):
        """The covered test needs only a 1-hop spanner view around an
        endpoint: local decision == global decision."""
        from repro.core.covered import is_covered

        spanner = medium_build.spanner
        checked = 0
        for u, v, w in list(medium_udg.edges())[:60]:
            if spanner.has_edge(u, v):
                continue
            global_dec = is_covered(
                u, v, w, spanner, medium_points.distance,
                alpha=params_half.alpha, theta=params_half.theta,
            )
            view = gather_local_view(medium_udg, spanner, u, 1)
            view_v = gather_local_view(medium_udg, spanner, v, 1)
            merged = view.spanner_view.spanning_union(view_v.spanner_view)
            local_dec = is_covered(
                u, v, w, merged, medium_points.distance,
                alpha=params_half.alpha, theta=params_half.theta,
            )
            assert local_dec == global_dec
            checked += 1
        assert checked > 0

    def test_local_view_contents(self, medium_udg, medium_build):
        view = gather_local_view(medium_udg, medium_build.spanner, 0, 2)
        from repro.graphs.paths import k_hop_neighborhood

        assert view.vertices == frozenset(
            k_hop_neighborhood(medium_udg, 0, 2)
        )
        for u, v, _ in view.spanner_view.edges():
            assert u in view.vertices and v in view.vertices
            assert medium_build.spanner.has_edge(u, v)

    def test_covered_decision_from_view_helper(
        self, medium_udg, medium_points, medium_build, params_half
    ):
        view = gather_local_view(medium_udg, medium_build.spanner, 0, 1)
        for v, w in list(medium_udg.neighbor_items(0))[:3]:
            decision = covered_decision_from_view(
                view, 0, v, w, medium_points.distance, params_half
            )
            assert isinstance(decision, bool)


class TestTheorem9HopBound:
    def test_query_certificates_within_hop_bound(
        self, medium_udg, medium_points, params_half
    ):
        """Theorem 9: when sp_H(x,y) <= t|xy|, a witness path exists
        within O(1) hops of x in G.  We verify the weaker executable
        form: the G-shortest path certifying sp_G'(x,y) <= t|xy| uses
        few hops."""
        from repro.graphs.paths import bfs_hops, dijkstra

        build = DistributedRelaxedGreedy(params_half, seed=6).build(
            medium_udg, medium_points.distance
        )
        spanner = build.spanner
        hop_bound = params_half.query_hop_bound() + math.ceil(
            2 * params_half.t / params_half.alpha
        )
        checked = 0
        for u, v, w in list(medium_udg.edges())[:40]:
            if spanner.has_edge(u, v):
                continue
            # certifying path exists within t*w; its hops in G are bounded
            dist = dijkstra(spanner, u, cutoff=params_half.t * w)
            if v not in dist:
                continue
            hops = bfs_hops(medium_udg, u, max_hops=hop_bound)
            assert v in hops
            checked += 1
        assert checked > 0
