"""E1 bench: regenerate the Theorem 10 stretch table."""


def test_e1_stretch_table(run_experiment):
    result = run_experiment("E1")
    for row in result.rows:
        assert row["stretch"] <= row["t"] * (1 + 1e-9)
