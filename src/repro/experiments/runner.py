"""Experiment result containers and table rendering.

Every experiment module exposes ``run(quick=False, seed=0) ->
ExperimentResult``; the result carries a claim statement, a table of
measurement rows and a verdict.  ``format_text``/``format_markdown``
render the tables that benches print and EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

__all__ = ["ExperimentResult", "format_table", "EXPERIMENT_REGISTRY", "register"]


@dataclass
class ExperimentResult:
    """One experiment's outcome.

    Attributes
    ----------
    experiment:
        Identifier (``"E1"`` ... ``"F20"``).
    claim:
        The paper claim being reproduced, one sentence.
    rows:
        Measurement rows (ordered dicts of column -> value).
    passed:
        Whether the claim's *shape* held on every row.
    notes:
        Free-form commentary (substitutions, caveats).
    """

    experiment: str
    claim: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    passed: bool = True
    notes: str = ""

    def columns(self) -> list[str]:
        """Union of row keys, in first-appearance order."""
        cols: list[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def to_text(self) -> str:
        """Plain-text rendering (claim, table, verdict)."""
        head = f"[{self.experiment}] {self.claim}"
        verdict = "PASS" if self.passed else "FAIL"
        body = format_table(self.rows)
        notes = f"notes: {self.notes}\n" if self.notes else ""
        return f"{head}\n{body}\n{notes}verdict: {verdict}\n"

    def to_markdown(self) -> str:
        """Markdown rendering for EXPERIMENTS.md."""
        cols = self.columns()
        lines = [
            f"### {self.experiment}: {self.claim}",
            "",
            "| " + " | ".join(cols) + " |",
            "|" + "|".join("---" for _ in cols) + "|",
        ]
        for row in self.rows:
            lines.append(
                "| "
                + " | ".join(_fmt(row.get(col, "")) for col in cols)
                + " |"
            )
        lines.append("")
        if self.notes:
            lines.append(f"*Notes: {self.notes}*")
            lines.append("")
        lines.append(
            f"**Verdict: {'PASS' if self.passed else 'FAIL'}**"
        )
        lines.append("")
        return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(rows: list[dict[str, Any]]) -> str:
    """Fixed-width text table of measurement rows."""
    if not rows:
        return "(no rows)"
    cols: list[str] = []
    for row in rows:
        for key in row:
            if key not in cols:
                cols.append(key)
    rendered = [[_fmt(row.get(col, "")) for col in cols] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in rendered))
        for i, col in enumerate(cols)
    ]
    header = "  ".join(col.ljust(w) for col, w in zip(cols, widths))
    sep = "  ".join("-" * w for w in widths)
    lines = [header, sep]
    for r in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(r, widths)))
    return "\n".join(lines)


#: name -> run callable; populated by :func:`register` at import time.
EXPERIMENT_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {}


def register(name: str):
    """Decorator adding an experiment ``run`` function to the registry."""

    def wrap(fn: Callable[..., ExperimentResult]):
        EXPERIMENT_REGISTRY[name] = fn
        return fn

    return wrap
