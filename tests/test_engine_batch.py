"""Batch-tier engine tests: edge cases + scalar-vs-batch equivalence.

The batch tier's contract is *exact* equivalence with the scalar
reference tier -- same rounds, same message and word totals, same
outputs in the same insertion order -- on every topology, including the
awkward ones (disconnected, isolated nodes, gapped labels, zero-message
protocols, budget exhaustion mid-run).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.engine import (
    BatchContext,
    BatchProtocol,
    Protocol,
    SynchronousNetwork,
)
from repro.distributed.mis import run_luby_mis, verify_mis
from repro.distributed.protocols.bfs import BFSTree
from repro.distributed.protocols.flooding import KHopGather
from repro.distributed.protocols.leader import LeaderElection
from repro.distributed.protocols.luby import LubyMIS
from repro.exceptions import ProtocolError, SimulationLimitError
from repro.graphs.graph import Graph


def random_adjacency(n: int, m: int, seed: int) -> dict[int, set[int]]:
    rng = np.random.default_rng(seed)
    adj: dict[int, set[int]] = {i: set() for i in range(n)}
    for _ in range(m):
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a != b:
            adj[a].add(b)
            adj[b].add(a)
    return adj


def two_components() -> Graph:
    """A path 0-1-2 plus a disjoint triangle 3-4-5 plus isolated 6."""
    g = Graph(7)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 1.0)
    g.add_edge(3, 4, 1.0)
    g.add_edge(4, 5, 1.0)
    g.add_edge(3, 5, 1.0)
    return g


def assert_equal_runs(net: SynchronousNetwork, protocol) -> None:
    scalar = net.run(protocol, engine="scalar")
    batch = net.run(protocol, engine="batch")
    assert scalar.rounds == batch.rounds
    assert scalar.messages == batch.messages
    assert scalar.words == batch.words
    assert scalar.outputs == batch.outputs
    # Insertion order is part of the contract (ascending node id).
    assert list(scalar.outputs) == list(batch.outputs)


class SilentBatchHalt(BatchProtocol):
    """Zero-message batch protocol: everyone halts in the first round."""

    name = "silent-batch"

    def on_start(self, ctx):
        return None

    def on_round(self, ctx, inbox):
        ctx.halt()
        return None

    def on_start_batch(self, net: BatchContext) -> None:
        pass

    def on_round_batch(self, net: BatchContext) -> None:
        net.halt(np.ones(net.num_nodes, dtype=bool))

    def outputs_batch(self, net: BatchContext):
        return {int(u): None for u in net.labels}


class ChattyBatch(BatchProtocol):
    """Never halts: must trip the round limit mid-batch."""

    name = "chatty-batch"

    def on_start_batch(self, net: BatchContext) -> None:
        net.post(net.num_slots, net.num_slots)

    def on_round_batch(self, net: BatchContext) -> None:
        net.post(net.num_slots, net.num_slots)


class TestEngineSelection:
    def test_auto_picks_batch_for_capable_protocols(self):
        assert getattr(LubyMIS(), "supports_batch", False)

    def test_bad_engine_name_rejected(self):
        net = SynchronousNetwork(two_components())
        with pytest.raises(ProtocolError, match="engine"):
            net.run(LubyMIS(), engine="turbo")

    def test_batch_requires_batch_protocol(self):
        class ScalarOnly(Protocol):
            name = "scalar-only"

            def on_round(self, ctx, inbox):
                ctx.halt()
                return None

        net = SynchronousNetwork(two_components())
        with pytest.raises(ProtocolError, match="batch"):
            net.run(ScalarOnly(), engine="batch")
        # auto falls back to the scalar tier without complaint.
        assert net.run(ScalarOnly(), engine="auto").rounds == 1

    def test_graph_self_loop_rejected(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g._adj[2][2] = 1.0  # bypass add_edge's own validation
        with pytest.raises(ProtocolError, match="self-loop"):
            SynchronousNetwork(g)

    def test_mapping_self_loop_rejected(self):
        with pytest.raises(ProtocolError, match="self-loop"):
            SynchronousNetwork({1: {1}})


class TestBatchEdgeCases:
    def test_zero_message_protocol(self):
        net = SynchronousNetwork(two_components())
        assert_equal_runs(net, SilentBatchHalt())
        result = net.run(SilentBatchHalt(), engine="batch")
        assert result.rounds == 1  # one silent compute round
        assert result.messages == 0
        assert result.words == 0

    def test_zero_hop_gather_is_zero_rounds(self):
        net = SynchronousNetwork(two_components())
        assert_equal_runs(net, KHopGather({0: {"x"}}, 0))
        result = net.run(KHopGather({0: {"x"}}, 0), engine="batch")
        assert result.rounds == 0

    def test_max_rounds_exhaustion_mid_batch(self):
        net = SynchronousNetwork(two_components(), max_rounds=5)
        with pytest.raises(SimulationLimitError, match="exceeded 5"):
            net.run(ChattyBatch(), engine="batch")

    def test_max_rounds_same_boundary_both_tiers(self):
        """BFS patience exceeding the budget trips the limit identically."""
        g = two_components()
        for engine in ("scalar", "batch"):
            net = SynchronousNetwork(g, max_rounds=6)
            with pytest.raises(SimulationLimitError):
                net.run(BFSTree(0, patience=50), engine=engine)

    def test_disconnected_bfs(self):
        net = SynchronousNetwork(two_components())
        protocol = BFSTree(0, patience=10)
        assert_equal_runs(net, protocol)
        outputs = net.run(protocol, engine="batch").outputs
        assert outputs[0] == (0, 0)
        assert outputs[2] == (2, 1)
        assert outputs[4] == (None, None)  # other component
        assert outputs[6] == (None, None)  # isolated

    def test_disconnected_luby(self):
        net = SynchronousNetwork(two_components())
        assert_equal_runs(net, LubyMIS(seed=3))
        outputs = net.run(LubyMIS(seed=3), engine="batch").outputs
        assert outputs[6] is True  # isolated nodes always join
        adj = {u: set(two_components().neighbors(u)) for u in range(7)}
        verify_mis(adj, {u for u, f in outputs.items() if f})

    def test_disconnected_flooding_respects_components(self):
        net = SynchronousNetwork(two_components())
        facts = {u: {("f", u)} for u in range(7)}
        protocol = KHopGather(facts, 3)
        assert_equal_runs(net, protocol)
        outputs = net.run(protocol, engine="batch").outputs
        assert outputs[0] == {("f", 0), ("f", 1), ("f", 2)}
        assert outputs[3] == {("f", 3), ("f", 4), ("f", 5)}
        assert outputs[6] == {("f", 6)}

    def test_gapped_mapping_labels(self):
        topology = {100: {7}, 7: {100, 55}, 55: set(), 9: set()}
        net = SynchronousNetwork(topology)
        for protocol in (
            LubyMIS(seed=1),
            KHopGather({100: {"a"}, 9: {"b"}}, 2),
            BFSTree(7, patience=4),
            LeaderElection(rounds=3),
        ):
            assert_equal_runs(net, protocol)

    def test_empty_topology(self):
        net = SynchronousNetwork({})
        result = net.run(LubyMIS(), engine="batch")
        assert result.rounds == 0
        assert result.outputs == {}

    def test_bfs_root_absent(self):
        net = SynchronousNetwork({1: {2}, 2: {1}})
        assert_equal_runs(net, BFSTree(99, patience=3))

    def test_bfs_patience_truncates_wave_identically(self):
        """patience < distance cuts the wave; tiers must agree exactly."""
        g = Graph(6)
        for i in range(5):
            g.add_edge(i, i + 1, 1.0)
        net = SynchronousNetwork(g)
        assert_equal_runs(net, BFSTree(0, patience=3))
        outputs = net.run(BFSTree(0, patience=3), engine="batch").outputs
        assert outputs[3] == (3, 2)
        assert outputs[4] == (None, None)  # gave up one round too early


class TestScalarBatchEquivalence:
    """Seeded protocol runs must match between tiers, bit for bit."""

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 30),
        st.integers(0, 90),
        st.integers(0, 10_000),
    )
    def test_luby_equivalence_random(self, n, m, seed):
        adj = random_adjacency(n, m, seed)
        net = SynchronousNetwork(adj)
        assert_equal_runs(net, LubyMIS(seed=seed))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 25), st.integers(0, 60), st.integers(0, 1000))
    def test_bfs_equivalence_random(self, n, m, seed):
        adj = random_adjacency(n, m, seed)
        net = SynchronousNetwork(adj)
        assert_equal_runs(net, BFSTree(seed % n, patience=40))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 25), st.integers(0, 60), st.integers(0, 1000))
    def test_flooding_equivalence_random(self, n, m, seed):
        adj = random_adjacency(n, m, seed)
        facts = {u: {("fact", u)} for u in range(0, n, 2)}
        net = SynchronousNetwork(adj)
        assert_equal_runs(net, KHopGather(facts, k=seed % 4))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(2, 25), st.integers(0, 60), st.integers(0, 1000))
    def test_leader_equivalence_random(self, n, m, seed):
        adj = random_adjacency(n, m, seed)
        net = SynchronousNetwork(adj)
        assert_equal_runs(net, LeaderElection(rounds=max(1, n // 2)))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mis_runner_engine_tiers_agree(self, seed):
        adj = random_adjacency(40, 120, seed)
        scalar = run_luby_mis(adj, seed=seed, engine="scalar")
        batch = run_luby_mis(adj, seed=seed, engine="batch")
        auto = run_luby_mis(adj, seed=seed)
        assert scalar.independent_set == batch.independent_set
        assert scalar.engine_rounds == batch.engine_rounds == auto.engine_rounds
        assert scalar.messages == batch.messages == auto.messages

    def test_luby_protocol_object_reusable_across_runs(self):
        protocol = LubyMIS(seed=5)
        net = SynchronousNetwork(random_adjacency(15, 30, 5))
        first = net.run(protocol, engine="batch")
        second = net.run(protocol, engine="batch")
        assert first.outputs == second.outputs
        assert first.rounds == second.rounds
        assert_equal_runs(net, protocol)
