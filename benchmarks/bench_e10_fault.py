"""E10 bench: regenerate the fault-tolerance table."""


def test_e10_fault_table(run_experiment):
    result = run_experiment("E10")
    for row in result.rows:
        assert row["ft_failures"] == 0
