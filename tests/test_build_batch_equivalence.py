"""Vectorized-vs-reference equivalence for the batch construction pipeline.

The batch builders (grid -> policy -> bulk insert, all numpy arrays) must
produce *identical* graphs -- same edge sets, bit-identical weights -- to
a brute-force ``O(n^2)`` per-pair reference that only uses the scalar
APIs (``PointSet.distance``, ``GrayZonePolicy.decide``,
``EdgeMetric.weight_of_length``, ``Graph.add_edge``).  This pins the
determinism contract: the counter-based pair hash behind the stochastic
policies evaluates identically scalar-at-a-time and array-at-once, and
the array distance/weight math matches the scalar math to the last ulp.
"""

import math

import numpy as np
import pytest

from repro.baselines.proximity import (
    gabriel_graph,
    relative_neighborhood_graph,
)
from repro.baselines.yao import theta_graph, yao_graph
from repro.geometry.metrics import EnergyMetric, EuclideanMetric
from repro.geometry.points import PointSet
from repro.graphs.build import (
    BernoulliPolicy,
    DecayPolicy,
    DropAllPolicy,
    KeepAllPolicy,
    ObstaclePolicy,
    build_qubg,
    build_udg,
)
from repro.graphs.graph import Graph

ALPHA = 0.6


def reference_udg(points, radius, metric):
    """Brute-force scalar-API UDG builder (the seed semantics)."""
    g = Graph(len(points))
    for u in range(len(points)):
        for v in range(u + 1, len(points)):
            d = points.distance(u, v)
            if d <= radius:
                g.add_edge(u, v, metric.weight_of_length(d))
    return g


def reference_qubg(points, alpha, policy, metric):
    """Brute-force scalar-API alpha-UBG builder (the seed semantics)."""
    g = Graph(len(points))
    for u in range(len(points)):
        for v in range(u + 1, len(points)):
            d = points.distance(u, v)
            if d <= alpha or (
                d <= 1.0 and policy.decide(points, u, v, d)
            ):
                g.add_edge(u, v, metric.weight_of_length(d))
    return g


def random_instance(seed, dim, n=55):
    rng = np.random.default_rng(seed)
    points = PointSet(rng.uniform(0.0, 3.0, size=(n, dim)))
    obstacles = tuple(
        (tuple(rng.uniform(0.0, 3.0, size=dim)), 0.15) for _ in range(4)
    )
    return points, obstacles


def policies_for(seed, obstacles):
    return [
        KeepAllPolicy(),
        DropAllPolicy(),
        BernoulliPolicy(0.5, seed=seed),
        DecayPolicy(ALPHA, seed=seed),
        ObstaclePolicy(obstacles=obstacles),
    ]


class TestBuilderEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("dim", [2, 3])
    def test_qubg_matches_bruteforce_all_policies(self, seed, dim):
        """Property: batch build_qubg == O(n^2) scalar reference, for
        every policy -- identical edge sets and bit-identical weights
        (Graph.__eq__ compares full adjacency maps)."""
        points, obstacles = random_instance(seed, dim)
        for policy in policies_for(seed, obstacles):
            for metric in (EuclideanMetric(), EnergyMetric(gamma=2.0)):
                ref = reference_qubg(points, ALPHA, policy, metric)
                got = build_qubg(points, ALPHA, policy=policy, metric=metric)
                assert got == ref, (policy, metric)

    @pytest.mark.parametrize("seed", [3, 4])
    @pytest.mark.parametrize("dim", [2, 3])
    def test_udg_matches_bruteforce(self, seed, dim):
        points, _ = random_instance(seed, dim)
        for radius in (0.5, 1.0):
            ref = reference_udg(points, radius, EuclideanMetric())
            got = build_udg(points, radius=radius)
            assert got == ref

    def test_qubg_alpha_one_no_policy_calls(self):
        """alpha = 1 leaves no gray zone; every policy yields the UDG."""
        points, obstacles = random_instance(9, 2)
        udg = build_udg(points)
        for policy in policies_for(9, obstacles):
            assert build_qubg(points, 1.0, policy=policy) == udg


class TestScalarBatchAgreement:
    """Regression: per-pair ``decide`` must agree with ``decide_batch``."""

    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_decide_matches_decide_batch(self, seed):
        points, obstacles = random_instance(seed, 2, n=40)
        rng = np.random.default_rng(seed + 100)
        m = 200
        u = rng.integers(0, 39, size=m)
        v = (u + 1 + rng.integers(0, 38, size=m)) % 40
        dist = rng.uniform(ALPHA + 1e-6, 1.0, size=m)
        for policy in policies_for(seed, obstacles):
            batch = policy.decide_batch(points, u, v, dist)
            assert batch.dtype == bool and batch.shape == (m,)
            scalar = [
                policy.decide(points, int(a), int(b), float(d))
                for a, b, d in zip(u, v, dist)
            ]
            assert batch.tolist() == scalar, policy

    def test_decide_symmetric_in_pair_order(self):
        points, _ = random_instance(2, 2, n=10)
        policy = BernoulliPolicy(0.5, seed=3)
        for u in range(10):
            for v in range(u + 1, 10):
                assert policy.decide(points, u, v, 0.8) == policy.decide(
                    points, v, u, 0.8
                )

    def test_bernoulli_empirical_rate(self):
        """The counter-based hash behaves like a fair Bernoulli(p)."""
        points = PointSet(np.zeros((2, 2)) + [[0.0, 0.0], [0.8, 0.0]])
        u = np.zeros(20000, dtype=np.int64)
        v = np.arange(1, 20001, dtype=np.int64)
        for p in (0.25, 0.5, 0.9):
            mask = BernoulliPolicy(p, seed=11).decide_batch(
                points, u, v, np.full(20000, 0.8)
            )
            assert abs(mask.mean() - p) < 0.02

    def test_negative_and_huge_seeds_are_clean(self):
        """Seed mixing wraps mod 2^64 in Python ints -- no numpy scalar
        overflow warnings for negative or > 64-bit seeds."""
        import warnings

        points = PointSet([[0.0, 0.0], [0.8, 0.0]])
        u = np.zeros(8, dtype=np.int64)
        v = np.arange(1, 9, dtype=np.int64)
        d = np.full(8, 0.8)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for seed in (-1, -(2**40), 2**63, 2**70):
                policy = BernoulliPolicy(0.5, seed=seed)
                batch = policy.decide_batch(points, u, v, d)
                assert batch.tolist() == [
                    policy.decide(points, 0, int(b), 0.8) for b in v
                ]

    def test_different_seeds_decorrelate(self):
        points = PointSet([[0.0, 0.0], [0.8, 0.0]])
        u = np.zeros(5000, dtype=np.int64)
        v = np.arange(1, 5001, dtype=np.int64)
        d = np.full(5000, 0.8)
        a = BernoulliPolicy(0.5, seed=0).decide_batch(points, u, v, d)
        b = BernoulliPolicy(0.5, seed=1).decide_batch(points, u, v, d)
        agree = (a == b).mean()
        assert 0.4 < agree < 0.6  # independent coins agree ~half the time


class TestGridArrayPath:
    @pytest.mark.parametrize("seed", [0, 3])
    @pytest.mark.parametrize("dim", [2, 3])
    def test_pairs_within_arrays_matches_bruteforce(self, seed, dim):
        from repro.geometry.grid import GridIndex

        rng = np.random.default_rng(seed)
        points = PointSet(rng.uniform(0.0, 3.0, size=(45, dim)))
        for radius, width in ((1.0, 1.0), (0.7, 0.3), (1.4, 1.0)):
            index = GridIndex(points, cell_width=width)
            u, v, dist = index.pairs_within_arrays(radius)
            got = {
                (int(a), int(b)): float(d)
                for a, b, d in zip(u, v, dist)
            }
            expected = {}
            for a in range(45):
                for b in range(a + 1, 45):
                    d = points.distance(a, b)
                    if d <= radius:
                        expected[(a, b)] = d
            assert got == expected
            # Rows are sorted lexicographically and u < v throughout.
            assert all(a < b for a, b in zip(u, v))
            assert list(zip(u.tolist(), v.tolist())) == sorted(
                zip(u.tolist(), v.tolist())
            )

    def test_iterator_wraps_array_path(self):
        from repro.geometry.grid import GridIndex

        rng = np.random.default_rng(4)
        points = PointSet(rng.uniform(0.0, 2.0, size=(30, 2)))
        index = GridIndex(points, cell_width=1.0)
        u, v, dist = index.pairs_within_arrays(1.0)
        legacy = list(index.all_pairs_within(1.0))
        assert legacy == list(
            zip(u.tolist(), v.tolist(), dist.tolist())
        )


class TestBaselineEquivalence:
    """The vectorized cone/proximity baselines match scalar references."""

    @pytest.fixture(scope="class")
    def deployment(self):
        rng = np.random.default_rng(17)
        points = PointSet(rng.uniform(0.0, 4.0, size=(80, 2)))
        return points, build_udg(points)

    @staticmethod
    def _cone_index(dx, dy, k):
        angle = math.atan2(dy, dx) % (2.0 * math.pi)
        return min(int(angle / (2.0 * math.pi / k)), k - 1)

    def reference_yao(self, base, points, k):
        out = Graph(base.num_vertices)
        for u in base.vertices():
            best = {}
            ux, uy = points[u]
            for v, w in base.neighbor_items(u):
                vx, vy = points[v]
                cone = self._cone_index(vx - ux, vy - uy, k)
                entry = (w, v)
                if cone not in best or entry < best[cone]:
                    best[cone] = entry
            for w, v in best.values():
                if not out.has_edge(u, v):
                    out.add_edge(u, v, w)
        return out

    def reference_theta(self, base, points, k):
        out = Graph(base.num_vertices)
        cone_angle = 2.0 * math.pi / k
        for u in base.vertices():
            best = {}
            ux, uy = points[u]
            for v, w in base.neighbor_items(u):
                vx, vy = points[v]
                dx, dy = vx - ux, vy - uy
                cone = self._cone_index(dx, dy, k)
                bisector = (cone + 0.5) * cone_angle
                projection = dx * math.cos(bisector) + dy * math.sin(
                    bisector
                )
                entry = (projection, v, w)
                if cone not in best or entry < best[cone]:
                    best[cone] = entry
            for projection, v, w in best.values():
                if not out.has_edge(u, v):
                    out.add_edge(u, v, w)
        return out

    def reference_gabriel(self, base, points):
        out = Graph(base.num_vertices)
        for u, v, w in base.edges():
            mid = (points[u] + points[v]) / 2.0
            radius_sq = w * w / 4.0
            if not any(
                z != v
                and float((points[z] - mid) @ (points[z] - mid))
                < radius_sq - 1e-15
                for z in base.neighbors(u)
            ):
                out.add_edge(u, v, w)
        return out

    def reference_rng(self, base, points):
        out = Graph(base.num_vertices)
        for u, v, w in base.edges():
            if not any(
                z != v
                and points.distance(u, z) < w
                and points.distance(v, z) < w
                for z in base.neighbors(u)
            ):
                out.add_edge(u, v, w)
        return out

    @pytest.mark.parametrize("k", [6, 8])
    def test_yao(self, deployment, k):
        points, base = deployment
        assert yao_graph(base, points, k) == self.reference_yao(
            base, points, k
        )

    @pytest.mark.parametrize("k", [6, 8])
    def test_theta(self, deployment, k):
        points, base = deployment
        assert theta_graph(base, points, k) == self.reference_theta(
            base, points, k
        )

    def test_gabriel(self, deployment):
        points, base = deployment
        assert gabriel_graph(base, points) == self.reference_gabriel(
            base, points
        )

    def test_rng(self, deployment):
        points, base = deployment
        assert relative_neighborhood_graph(
            base, points
        ) == self.reference_rng(base, points)
