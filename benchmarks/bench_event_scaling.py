"""Batch event engine scaling: speedup over the scalar heap reference.

ISSUE 8 acceptance: the batched epoch engine must (a) produce a
``RunResult`` bit-identical to the pinned scalar heap engine -- that
equality is asserted here before any speedup is recorded -- and (b)
push hardened protocol runs to n=10^4 under the chaos scenario inside a
hard wall-clock budget.  The lossy scenario carries the speedup
measurements because its epochs stay wide (unit latency keeps many
deliveries on the same timestamp); chaos jitter degenerates epochs to
singletons, so there the batch tier is only required to keep pace.

Measurements land in the ``results/bench`` trajectory store; with
``REPRO_BENCH_GATE=1`` a >2x slowdown against the stored median fails
the bench.  The n=10^4 chaos budget is hard regardless of the gate.

Run with ``-s`` to see the recorded numbers::

    PYTHONPATH=src python -m pytest benchmarks/bench_event_scaling.py -s
"""

from __future__ import annotations

import time

import pytest

from repro.distributed import run_luby_mis_event
from repro.experiments import fault_scenario
from repro.geometry.sampling import uniform_points
from repro.graphs.build import build_udg

# Measured ~90s on the reference box (n=10^4 chaos, batch engine); 3x
# headroom absorbs slower CI runners without masking a real regression.
CHAOS_BUDGET_S = 300.0


def _graph(n: int, expected_degree: float = 12.0):
    points = uniform_points(n, seed=6000 + n, expected_degree=expected_degree)
    return build_udg(points)


@pytest.mark.parametrize("n", [1000, 5000])
def test_batch_engine_speedup_lossy(benchmark, bench_gate, n):
    """Hardened Luby under lossy: batch == scalar, speedup recorded."""
    graph = _graph(n)
    plan = fault_scenario("lossy").plan(seed=31)
    max_events = max(5_000_000, 3_000 * n)

    t0 = time.perf_counter()
    scalar = run_luby_mis_event(
        graph, seed=11, plan=plan, max_events=max_events, engine="scalar"
    )
    scalar_s = time.perf_counter() - t0

    batch = benchmark.pedantic(
        lambda: run_luby_mis_event(
            graph, seed=11, plan=plan, max_events=max_events, engine="batch"
        ),
        rounds=1, iterations=1,
    )
    batch_s = benchmark.stats.stats.mean

    # Bit-equality first: a fast wrong engine records nothing.
    assert batch.result == scalar.result
    assert batch.independent_set == scalar.independent_set
    assert batch.t_end == scalar.t_end

    speedup = scalar_s / batch_s if batch_s > 0 else float("inf")
    print(
        f"\nevent-scaling n={n}: scalar {scalar_s:.3f}s, "
        f"batch {batch_s:.3f}s, speedup {speedup:.2f}x, "
        f"retrans={batch.result.retransmissions}"
    )
    bench_gate(
        f"event-scaling-lossy-{n}",
        {
            "n": n,
            "scalar_s": scalar_s,
            "wall_s": batch_s,
            "speedup": speedup,
            "retransmissions": batch.result.retransmissions,
            "messages": batch.result.messages,
        },
    )


def test_batch_engine_chaos_n10k_budget(benchmark, bench_gate):
    """n=10^4 hardened Luby under chaos: completes inside the budget."""
    n = 10_000
    graph = _graph(n)
    plan = fault_scenario("chaos").plan(seed=31)

    run = benchmark.pedantic(
        lambda: run_luby_mis_event(
            graph, seed=11, plan=plan,
            max_events=100_000_000, engine="batch",
        ),
        rounds=1, iterations=1,
    )
    wall_s = benchmark.stats.stats.mean

    assert run.independent_set  # verified MIS of the alive subgraph
    assert run.result.retransmissions > 0
    assert wall_s < CHAOS_BUDGET_S, (
        f"n={n} chaos run took {wall_s:.1f}s, budget {CHAOS_BUDGET_S:.0f}s"
    )
    print(
        f"\nevent-scaling chaos n={n}: {wall_s:.3f}s "
        f"(budget {CHAOS_BUDGET_S:.0f}s), "
        f"retrans={run.result.retransmissions}, "
        f"crashed={len(set(run.result.crashed))}, "
        f"mis={len(run.independent_set)}"
    )
    bench_gate(
        "event-scaling-chaos-10k",
        {
            "n": n,
            "wall_s": wall_s,
            "budget_s": CHAOS_BUDGET_S,
            "retransmissions": run.result.retransmissions,
            "crashed": len(set(run.result.crashed)),
            "mis_size": len(run.independent_set),
        },
    )
