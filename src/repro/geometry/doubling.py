"""Doubling-dimension estimation for finite metric spaces.

Lemmas 15 and 20 of the paper argue that the derived conflict graphs are
unit ball graphs residing in metric spaces of *constant doubling
dimension* -- the property that lets the Kuhn et al. MIS algorithm run in
``O(log* n)`` rounds.  The F15/F20 experiments verify this empirically:
this module measures, for a finite metric given as a distance matrix, the
maximum number of radius ``R/2`` balls needed to cover any radius ``R``
ball (greedy covering), whose log2 upper-bounds the doubling dimension
witnessed at that scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..exceptions import GraphError

__all__ = ["DoublingReport", "estimate_doubling_dimension"]


@dataclass(frozen=True)
class DoublingReport:
    """Result of a doubling-dimension measurement.

    Attributes
    ----------
    max_cover_size:
        Largest number of half-radius balls the greedy cover needed for
        any sampled (center, radius) pair.
    dimension:
        ``log2(max_cover_size)`` -- an empirical witness for the doubling
        dimension (the true dimension is the sup over all balls; greedy
        covering can overshoot the optimum by a constant factor, which is
        fine for a boundedness check).
    samples:
        Number of (center, radius) pairs examined.
    """

    max_cover_size: int
    dimension: float
    samples: int


def _greedy_half_cover(dist: np.ndarray, members: np.ndarray, radius: float) -> int:
    """Number of radius/2 balls a greedy cover uses for ``members``.

    Repeatedly picks an uncovered point and covers everything within
    ``radius / 2`` of it, mirroring the constructions in the proofs of
    Lemmas 15 and 20.
    """
    uncovered = list(members)
    count = 0
    half = radius / 2.0
    while uncovered:
        center = uncovered[0]
        count += 1
        uncovered = [p for p in uncovered if dist[center, p] > half]
    return count


def estimate_doubling_dimension(
    dist: np.ndarray,
    *,
    radii: list[float] | None = None,
    max_centers: int = 64,
    seed: int | None = 0,
) -> DoublingReport:
    """Estimate the doubling dimension of a finite metric space.

    Parameters
    ----------
    dist:
        Symmetric ``(n, n)`` matrix of pairwise distances.  ``inf`` entries
        (disconnected pairs) are allowed; a ball simply never contains such
        points.
    radii:
        Radii to test.  Defaults to a geometric sweep between the smallest
        and largest finite positive distance.
    max_centers:
        At most this many ball centers are sampled per radius (all points
        are used when ``n <= max_centers``).
    seed:
        Seed for center sampling.

    Returns
    -------
    DoublingReport
        Worst cover size over all sampled balls and its log2.
    """
    dist = np.asarray(dist, dtype=np.float64)
    if dist.ndim != 2 or dist.shape[0] != dist.shape[1]:
        raise GraphError(f"dist must be square, got shape {dist.shape}")
    n = dist.shape[0]
    if n == 0:
        raise GraphError("empty metric space")
    finite = dist[np.isfinite(dist) & (dist > 0)]
    if finite.size == 0:
        return DoublingReport(max_cover_size=1, dimension=0.0, samples=0)
    if radii is None:
        lo, hi = float(finite.min()), float(finite.max())
        radii = [lo * (hi / lo) ** (k / 4.0) for k in range(5)] if hi > lo else [hi]
    rng = np.random.default_rng(seed)
    centers = (
        np.arange(n)
        if n <= max_centers
        else rng.choice(n, size=max_centers, replace=False)
    )
    worst = 1
    samples = 0
    for radius in radii:
        if radius <= 0:
            raise GraphError(f"radii must be positive, got {radius}")
        for center in centers:
            row = dist[center]
            members = np.flatnonzero(np.isfinite(row) & (row <= radius))
            samples += 1
            worst = max(worst, _greedy_half_cover(dist, members, radius))
    return DoublingReport(
        max_cover_size=worst, dimension=math.log2(worst), samples=samples
    )
