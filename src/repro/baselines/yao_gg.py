"""Yao-on-Gabriel: stand-in for the Li--Wang planar spanner (ref [15]).

Section 1.3 of the paper positions its result against Li & Wang's
"Efficient construction of low weighted bounded degree planar spanner":
a distributed algorithm producing a planar t-spanner of a UDG with
``t ~ 6.2`` and degree at most 25.  That construction (localized Delaunay
plus ordered Yao filtering) is a substantial artifact of its own; the
standard lightweight surrogate in the literature -- used here and
documented as a substitution in DESIGN.md -- is the **YaoGG** family:
apply a Yao cone filter on top of the Gabriel graph.  Like [15] it is
planar (subgraph of GG), has constant degree (Yao out-degree ``k`` with
mutual agreement), is computable in O(1) message rounds, and has
moderate-but-not-(1+eps) stretch; so it occupies the same point in the
design space that the paper improves upon, which is what experiment E5
needs from a comparator.
"""

from __future__ import annotations

from ..geometry.points import PointSet
from ..graphs.graph import Graph
from .proximity import gabriel_graph
from .yao import yao_graph

__all__ = ["yao_gabriel_graph"]


def yao_gabriel_graph(base: Graph, points: PointSet, k: int = 9) -> Graph:
    """Yao filter (``k`` cones) applied to the Gabriel graph of ``base``.

    Parameters
    ----------
    base:
        Communication graph (UDG).
    points:
        2-D coordinates.
    k:
        Yao cone count; 9 mirrors the degree regime of [15]'s
        construction (bounded out-degree per cone over a planar base).
    """
    return yao_graph(gabriel_graph(base, points), points, k)
