"""Routing over controlled topologies.

Topology control exists so that routing runs on the sparse subgraph
instead of the full radio graph (Section 1.3 of the paper; the planarity
requirements it cites exist solely to make *greedy geographic routing*
[9] safe).  This module provides the two routing modes downstream users
actually run on a spanner:

* **shortest-path routing** -- next-hop tables per source, with
  route-stretch measurement: on a ``(1+eps)``-spanner every route is
  within ``(1+eps)`` of the radio graph's optimum, which is the whole
  point of the spanner property;
* **greedy geographic routing** -- forward to the neighbor closest to
  the destination; delivery is *not* guaranteed on non-planar graphs
  (it stalls in local minima), and the delivery-rate measurement lets
  users quantify that trade-off against planar baselines (Gabriel/RNG)
  exactly the way the literature discusses it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .exceptions import GraphError
from .geometry.points import PointSet
from .graphs.graph import Graph
from .graphs.paths import (
    dijkstra,
    multi_source_trees,
    pair_distances,
    reconstruct_path_array,
)

__all__ = [
    "RoutingTable",
    "Route",
    "greedy_geographic_route",
    "greedy_delivery_report",
    "GreedyDeliveryReport",
]


@dataclass(frozen=True)
class Route:
    """One routed path.

    Attributes
    ----------
    path:
        Vertex sequence from source to destination (empty on failure).
    cost:
        Total edge weight along ``path`` (``inf`` on failure).
    delivered:
        Whether the destination was reached.
    """

    path: tuple[int, ...]
    cost: float
    delivered: bool


class RoutingTable:
    """Per-source shortest-path next-hop table over a topology.

    Tables are stored as distance/predecessor *arrays* (one row per
    source).  They are built lazily: the first query from a source runs
    one batched tree computation and caches the row, matching how a
    deployed node would compute its table once after topology control
    converges.  :meth:`warm` pre-computes many sources in one C-level
    batch for bulk evaluations.
    """

    def __init__(self, topology: Graph) -> None:
        self._graph = topology
        self._trees: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def warm(self, sources: Iterable[int]) -> None:
        """Batch-build tables for every source not yet cached."""
        missing = sorted({int(s) for s in sources} - self._trees.keys())
        if not missing:
            return
        dist, pred = multi_source_trees(self._graph, missing)
        for i, s in enumerate(missing):
            self._trees[s] = (dist[i], pred[i])

    def _tree(self, source: int) -> tuple[np.ndarray, np.ndarray]:
        if source not in self._trees:
            self.warm([source])
        return self._trees[source]

    def next_hop(self, source: int, target: int) -> int | None:
        """First hop on a shortest ``source -> target`` route.

        Returns ``None`` when ``target`` is unreachable.
        """
        dist, pred = self._tree(source)
        if target == source:
            return source
        if not np.isfinite(dist[target]):
            return None
        hop = target
        while int(pred[hop]) != source:
            hop = int(pred[hop])
        return hop

    def route(self, source: int, target: int) -> Route:
        """Full shortest route with cost."""
        dist, pred = self._tree(source)
        if not np.isfinite(dist[target]):
            return Route(path=(), cost=float("inf"), delivered=False)
        path = reconstruct_path_array(pred, source, target)
        return Route(path=tuple(path), cost=float(dist[target]), delivered=True)

    def route_stretch(
        self, base: Graph, source: int, target: int
    ) -> float:
        """Route cost relative to the optimum in the full radio graph.

        On a ``t``-spanner this is at most ``t`` for every reachable
        pair -- the operational meaning of Theorem 10.
        """
        if base.num_vertices != self._graph.num_vertices:
            raise GraphError("base and topology vertex counts differ")
        route = self.route(source, target)
        best = dijkstra(base, source, targets={target}).get(
            target, float("inf")
        )
        if not route.delivered:
            return float("inf")
        if best == 0.0:
            return 1.0
        return route.cost / best


def greedy_geographic_route(
    topology: Graph,
    points: PointSet,
    source: int,
    target: int,
    *,
    max_hops: int | None = None,
) -> Route:
    """Greedy geographic forwarding: always move closer to the target.

    At each step the packet moves to the neighbor strictly closest to the
    destination (in Euclidean distance); if no neighbor improves, the
    packet is stuck in a local minimum and routing fails -- the behaviour
    planar topologies + face routing exist to repair [9].
    """
    if max_hops is None:
        max_hops = topology.num_vertices
    current = source
    path = [current]
    cost = 0.0
    for _ in range(max_hops):
        if current == target:
            return Route(path=tuple(path), cost=cost, delivered=True)
        here = points.distance(current, target)
        best_next = None
        best_dist = here
        for v, _ in topology.neighbor_items(current):
            d = points.distance(v, target)
            if d < best_dist:
                best_dist = d
                best_next = v
        if best_next is None:
            return Route(path=tuple(path), cost=float("inf"), delivered=False)
        cost += topology.weight(current, best_next)
        current = best_next
        path.append(current)
    if current == target:
        return Route(path=tuple(path), cost=cost, delivered=True)
    return Route(path=tuple(path), cost=float("inf"), delivered=False)


@dataclass(frozen=True)
class GreedyDeliveryReport:
    """Delivery statistics for greedy geographic routing.

    Attributes
    ----------
    delivered / attempted:
        Pair counts.
    delivery_rate:
        ``delivered / attempted``.
    mean_stretch:
        Mean cost ratio versus the topology's own shortest paths over
        *delivered* pairs (greedy can take detours even when it works).
    """

    delivered: int
    attempted: int
    mean_stretch: float

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.attempted if self.attempted else 1.0


def greedy_delivery_report(
    topology: Graph,
    points: PointSet,
    *,
    num_pairs: int = 100,
    seed: int | None = 0,
) -> GreedyDeliveryReport:
    """Sample connected pairs and measure greedy delivery + stretch.

    The connectivity filter and the stretch denominators come from one
    blocked multi-source Dijkstra batch over the topology's CSR snapshot
    (the per-pair dict searches are gone); only the greedy walk itself --
    the measured subject -- runs per pair.
    """
    if num_pairs <= 0:
        raise GraphError(f"num_pairs must be positive, got {num_pairs}")
    rng = np.random.default_rng(seed)
    n = topology.num_vertices
    delivered = 0
    attempted = 0
    stretch_sum = 0.0
    cand = rng.integers(n, size=(30 * num_pairs, 2))
    cand = cand[cand[:, 0] != cand[:, 1]]
    # Chunked early exit: resolve the 30x oversample against the
    # Dijkstra kernel only as far as needed to seat num_pairs connected
    # pairs (one chunk, in the usual connected case).
    chunk = max(64, 2 * num_pairs)
    for lo in range(0, cand.shape[0], chunk):
        if attempted >= num_pairs:
            break
        part = cand[lo : lo + chunk]
        best = pair_distances(topology, part[:, 0], part[:, 1])
        picks = np.flatnonzero(np.isfinite(best))[: num_pairs - attempted]
        for i in picks.tolist():
            s, t = int(part[i, 0]), int(part[i, 1])
            attempted += 1
            route = greedy_geographic_route(topology, points, s, t)
            if route.delivered:
                delivered += 1
                stretch_sum += (
                    route.cost / best[i] if best[i] > 0 else 1.0
                )
    mean = stretch_sum / delivered if delivered else float("inf")
    return GreedyDeliveryReport(
        delivered=delivered, attempted=attempted, mean_stretch=mean
    )
