"""Partition invariance and structural properties of the sharded tier.

The sharded batch tier's contract is *bit-identity*: for any shard
count and any partition, a run must produce the same ``RunResult`` --
rounds, messages, words, outputs **including insertion order** -- as
the single-process batch tier.  This suite pins that for every shipped
shard-capable protocol and for the end-to-end distributed spanner
build, across in-process sequential sharding and the real fork worker
pool, plus the structural invariants of the shard plan itself.

On the "every edge mirrored in <= 2 halos" property of the issue: that
bound holds only for partitions where each node's neighborhood spans at
most two shards (1-D contiguous cuts of a path-like ordering).  General
grid partitions put a node's neighbors in up to four cells, so the
*true* invariant -- tested here -- is that a node's full adjacency row
is materialized in exactly the contexts of ``{owner(u)} | owner(N(u))``
and nowhere else: mirrors exist precisely where the halo needs them.
"""

from collections import deque

import numpy as np
import pytest

from repro.distributed.dist_spanner import DistributedRelaxedGreedy
from repro.distributed.engine import SynchronousNetwork
from repro.distributed.protocols.aggregate import ConvergecastSum
from repro.distributed.protocols.bfs import BFSTree
from repro.distributed.protocols.coloring import (
    TreeSixColoring,
    cv_rounds_needed,
)
from repro.distributed.protocols.flooding import KHopGather
from repro.distributed.protocols.leader import LeaderElection
from repro.distributed.protocols.luby import LubyMIS
from repro.distributed.shard import (
    ShardPlan,
    contiguous_partition,
    grid_partition,
)
from repro.exceptions import ProtocolError
from repro.geometry.sampling import uniform_points
from repro.graphs.build import build_udg
from repro.params import SpannerParams

SHARD_COUNTS = [1, 2, 4, 7]


@pytest.fixture(scope="module")
def shard_points():
    return uniform_points(240, seed=17, side=4.0)


@pytest.fixture(scope="module")
def shard_graph(shard_points):
    return build_udg(shard_points)


def _bfs_forest(g):
    parents, seen = {}, set()
    for root in g.vertices():
        if root in seen:
            continue
        seen.add(root)
        parents[root] = root
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in g.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    parents[v] = u
                    queue.append(v)
    return parents


def _protocols(graph):
    facts = {u: {("tok", u)} for u in range(0, graph.num_vertices, 5)}
    parents = _bfs_forest(graph)
    values = {u: 0.5 * u - 3.0 for u in range(graph.num_vertices)}
    return [
        ("luby", lambda: LubyMIS(seed=11)),
        ("bfs", lambda: BFSTree(root=3)),
        ("leader", lambda: LeaderElection(rounds=6)),
        ("khop", lambda: KHopGather(facts, k=3)),
        ("convergecast", lambda: ConvergecastSum(parents, values)),
        ("coloring", lambda: TreeSixColoring(
            parents, cv_rounds_needed(graph.num_vertices)
        )),
    ]


def _assert_identical(a, b):
    assert a.rounds == b.rounds
    assert a.messages == b.messages
    assert a.words == b.words
    # Insertion order included: compare the item sequences, not the dicts.
    assert list(a.outputs.items()) == list(b.outputs.items())


class TestPartitionInvariance:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_all_protocols_bit_identical(self, shard_graph, shards):
        net = SynchronousNetwork(shard_graph)
        for name, make in _protocols(shard_graph):
            single = net.run(make())
            sharded = net.run(make(), shards=shards)
            _assert_identical(single, sharded)

    @pytest.mark.parametrize("shards", [2, 4])
    def test_grid_partition_bit_identical(
        self, shard_graph, shard_points, shards
    ):
        net = SynchronousNetwork(shard_graph)
        part = grid_partition(shard_points, shards)
        for name, make in _protocols(shard_graph):
            single = net.run(make())
            sharded = net.run(make(), partition=part)
            _assert_identical(single, sharded)

    def test_pool_backend_bit_identical(self, shard_graph):
        # jobs > 1 engages the persistent fork worker pool; results must
        # not depend on the backend.
        net = SynchronousNetwork(shard_graph)
        for name, make in _protocols(shard_graph):
            single = net.run(make())
            pooled = net.run(make(), shards=4, jobs=2)
            _assert_identical(single, pooled)

    def test_scalar_engine_rejects_shards(self, shard_graph):
        net = SynchronousNetwork(shard_graph)
        with pytest.raises(ProtocolError):
            net.run(LubyMIS(seed=1), engine="scalar", shards=2)

    def test_unshardable_fallback_warns(self, shard_graph):
        # A custom combiner forces the scalar tier; requesting shards
        # must still work (bit-identically) but announce the fallback.
        net = SynchronousNetwork(shard_graph)
        parents = _bfs_forest(shard_graph)
        values = {u: u for u in range(shard_graph.num_vertices)}
        make = lambda: ConvergecastSum(parents, values, combine=max)
        with pytest.warns(RuntimeWarning, match="not shard-capable"):
            sharded = net.run(make(), shards=2)
        _assert_identical(net.run(make()), sharded)

    def test_disconnected_topology(self):
        pts = uniform_points(90, seed=23, side=9.0)  # sparse: many comps
        g = build_udg(pts)
        net = SynchronousNetwork(g)
        for shards in (2, 7):
            _assert_identical(
                net.run(LubyMIS(seed=2)),
                net.run(LubyMIS(seed=2), shards=shards),
            )


class TestSpannerBuildInvariance:
    @pytest.mark.parametrize("jobs", [2, 4, 7])
    def test_distributed_build_jobs_equality(
        self, shard_graph, shard_points, jobs
    ):
        params = SpannerParams.from_epsilon(0.5)
        base = DistributedRelaxedGreedy(params, seed=7).build(
            shard_graph, shard_points.distance
        )
        sharded = DistributedRelaxedGreedy(
            params, seed=7, jobs=jobs, points=shard_points
        ).build(shard_graph, shard_points.distance)
        assert sorted(base.spanner.edges()) == sorted(sharded.spanner.edges())
        assert base.ledger.total_rounds == sharded.ledger.total_rounds
        assert base.ledger.total_messages == sharded.ledger.total_messages
        assert base.mis_invocations == sharded.mis_invocations
        assert [p.num_added for p in base.phases] == [
            p.num_added for p in sharded.phases
        ]
        assert [p.num_removed for p in base.phases] == [
            p.num_removed for p in sharded.phases
        ]


def _plan_for(graph, owner, shards):
    net = SynchronousNetwork(graph)
    labels, indptr, indices, _ = net._topology_arrays()
    return ShardPlan.build(labels, indptr, indices, owner, shards), (
        labels,
        indptr,
        indices,
    )


class TestPlanProperties:
    @pytest.mark.parametrize("shards", [2, 4, 7])
    def test_every_slot_has_exactly_one_accounting_owner(
        self, shard_graph, shards
    ):
        n = shard_graph.num_vertices
        owner = contiguous_partition(n, shards)
        plan, (labels, indptr, indices) = _plan_for(
            shard_graph, owner, shards
        )
        g_sources = np.repeat(np.arange(n), np.diff(indptr))
        total = 0
        for spec in plan.specs:
            s_deg = np.diff(spec.indptr)
            s_src = np.repeat(np.arange(n), s_deg)
            total += int(np.count_nonzero(spec.owned[s_src]))
        assert total == indices.size  # each directed slot billed once
        # Node ownership itself partitions the node set.
        counts = sum(spec.owned.astype(int) for spec in plan.specs)
        assert (counts == 1).all()

    @pytest.mark.parametrize("shards", [2, 4])
    def test_edges_present_in_both_endpoint_owner_contexts(
        self, shard_graph, shard_points, shards
    ):
        n = shard_graph.num_vertices
        owner = grid_partition(shard_points, shards)
        plan, (labels, indptr, indices) = _plan_for(
            shard_graph, owner, shards
        )
        g_sources = np.repeat(np.arange(n), np.diff(indptr))
        for u, v in zip(g_sources.tolist(), indices.tolist()):
            for s in {int(owner[u]), int(owner[v])}:
                spec = plan.specs[s]
                row = spec.indices[spec.indptr[u] : spec.indptr[u + 1]]
                assert v in row  # full row materialized where needed

    @pytest.mark.parametrize("shards", [2, 4, 7])
    def test_rows_mirrored_exactly_where_the_halo_needs_them(
        self, shard_graph, shard_points, shards
    ):
        # The true mirror invariant (see module docstring): row u is
        # full in shard s iff s owns u or s owns a neighbor of u.
        n = shard_graph.num_vertices
        owner = grid_partition(shard_points, shards)
        plan, (labels, indptr, indices) = _plan_for(
            shard_graph, owner, shards
        )
        for u in range(n):
            nbrs = indices[indptr[u] : indptr[u + 1]]
            expect = {int(owner[u])} | {int(owner[v]) for v in nbrs}
            have = {
                spec.shard
                for spec in plan.specs
                if spec.indptr[u + 1] > spec.indptr[u]
                or (spec.owned[u] and indptr[u + 1] == indptr[u])
            }
            assert have == expect

    def test_contiguous_partition_is_balanced(self):
        for n, shards in [(100, 4), (97, 7), (10, 3)]:
            owner = contiguous_partition(n, shards)
            counts = np.bincount(owner, minlength=shards)
            assert counts.sum() == n
            assert counts.max() - counts.min() <= 1

    def test_grid_partition_respects_cells(self, shard_points):
        owner = grid_partition(shard_points, 4)
        assert owner.min() >= 0 and owner.max() < 4
        cells = np.floor(shard_points.coords / 1.0).astype(np.int64)
        keys = cells[:, 0] * 1_000_003 + cells[:, 1]
        for key in np.unique(keys):
            sel = keys == key
            assert np.unique(owner[sel]).size == 1  # whole cells move
