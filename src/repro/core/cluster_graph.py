"""The Das--Narasimhan cluster graph ``H_{i-1}`` (Section 2.2.3).

``H_{i-1}`` is a constant-hop-diameter approximation of the partial
spanner ``G'_{i-1}`` used to answer all shortest-path queries of phase
``i``:

* **intra-cluster edges** ``{a, x}`` join each cluster center ``a`` to each
  member ``x`` of its cluster, weighted ``sp_{G'}(a, x)``;
* **inter-cluster edges** ``{a, b}`` join centers whose clusters are close:
  either ``sp_{G'}(a, b) <= W_{i-1}`` (condition i) or some spanner edge
  crosses between the clusters (condition ii); the weight is always
  ``sp_{G'}(a, b)`` and is at most ``(2*delta + 1) * W_{i-1}`` (Lemma 5).

Lemma 7 guarantees path lengths in ``H`` sandwich those of ``G'``:
``L1 <= L2 <= (1 + 6*delta)/(1 - 2*delta) * L1``; Lemma 8 bounds the hops
of any relevant ``H``-path by ``2 + ceil(t*r/delta)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import GraphError
from ..graphs.graph import Graph
from ..graphs.paths import (
    dijkstra,
    multi_source_distances,
    prefer_batched_sources,
    source_block_size,
)
from .cover import ClusterCover

__all__ = ["ClusterGraph", "build_cluster_graph"]


@dataclass(frozen=True)
class ClusterGraph:
    """Cluster graph ``H`` with its bookkeeping.

    Attributes
    ----------
    graph:
        The cluster graph itself (same vertex ids as the spanner; only
        centers and members carry edges).
    cover:
        The cluster cover ``H`` was built from.
    w_prev:
        The bin boundary ``W_{i-1}`` governing inter-cluster edges.
    num_intra_edges / num_inter_edges:
        Edge-type counts (Lemma 6 bounds inter-cluster degree).
    """

    graph: Graph
    cover: ClusterCover
    w_prev: float
    num_intra_edges: int
    num_inter_edges: int

    def distance(self, x: int, y: int, *, cutoff: float | None = None) -> float:
        """Shortest-path distance ``sp_H(x, y)``.

        Returns ``inf`` when no path exists (within ``cutoff`` if given).
        """
        if x == y:
            return 0.0
        return dijkstra(self.graph, x, cutoff=cutoff, targets={y}).get(
            y, float("inf")
        )

    def distances_from(
        self, x: int, *, cutoff: float | None = None
    ) -> dict[int, float]:
        """All ``sp_H(x, .)`` distances within ``cutoff``."""
        return dijkstra(self.graph, x, cutoff=cutoff)

    def inter_center_degree(self) -> int:
        """Maximum number of inter-cluster edges at any center (Lemma 6)."""
        worst = 0
        centers = set(self.cover.centers)
        for a in centers:
            count = sum(1 for v in self.graph.neighbors(a) if v in centers)
            worst = max(worst, count)
        return worst


def build_cluster_graph(
    spanner: Graph,
    cover: ClusterCover,
    w_prev: float,
    delta: float,
) -> ClusterGraph:
    """Construct ``H_{i-1}`` from the partial spanner and its cover.

    Parameters
    ----------
    spanner:
        The partial spanner ``G'_{i-1}``.
    cover:
        Cluster cover of ``spanner`` with radius ``delta * w_prev``.
    w_prev:
        Bin boundary ``W_{i-1}``.
    delta:
        Cover radius factor (used for the Lemma 5 search cutoff).

    Notes
    -----
    Inter-cluster distances are computed by one cutoff-Dijkstra per center
    on ``spanner`` with cutoff ``2*delta*w_prev + max(w_prev, longest
    crossing spanner edge)``.  For edges added in phases ``1..i-1`` the
    crossing length is at most ``W_{i-1}`` and the cutoff reduces to the
    Lemma 5 bound ``(2*delta + 1)*w_prev``; phase-0 clique-spanner edges
    may be longer (their lengths are bounded by ``alpha``, not ``W_0``), so
    the cutoff stretches just enough to keep condition (ii) exact.
    """
    if w_prev <= 0.0:
        raise GraphError(f"w_prev must be positive, got {w_prev}")
    if delta <= 0.0:
        raise GraphError(f"delta must be positive, got {delta}")
    h = Graph(spanner.num_vertices)
    num_intra = 0
    # Intra-cluster edges come straight from the cover's center distances.
    for v, center in cover.assignment.items():
        if v == center:
            continue
        d = cover.center_distance[v]
        if d > 0.0:
            h.add_edge(center, v, d)
            num_intra += 1

    # Candidate inter-cluster pairs from condition (ii): spanner edges that
    # cross between clusters.
    crossing: set[tuple[int, int]] = set()
    longest_crossing = 0.0
    for u, v, w in spanner.edges():
        a, b = cover.assignment.get(u), cover.assignment.get(v)
        if a is None or b is None or a == b:
            continue
        crossing.add((min(a, b), max(a, b)))
        longest_crossing = max(longest_crossing, w)

    reach = 2.0 * delta * w_prev + max(w_prev, longest_crossing)
    centers = sorted(cover.centers)
    num_inter = 0
    # Center-to-center distances within `reach`: batched multi-source
    # Dijkstra blocks when the reach balls are wide, per-center dict
    # search when they are tiny (see prefer_batched_sources).
    if prefer_batched_sources(spanner, centers, reach):
        center_arr = np.asarray(centers, dtype=np.int64)
        pos = {c: j for j, c in enumerate(centers)}
        block = source_block_size(spanner)
        for lo in range(0, len(centers), block):
            chunk = center_arr[lo : lo + block]
            rows = multi_source_distances(spanner, chunk, cutoff=reach)
            sub = rows[:, center_arr]  # (chunk, num_centers)
            near = np.isfinite(sub) & (sub <= w_prev)  # condition (i)
            for i, j in np.argwhere(near).tolist():
                a, b = int(chunk[i]), int(centers[j])
                if b <= a:
                    continue  # handle each unordered pair once
                if not h.has_edge(a, b):
                    h.add_edge(a, b, float(sub[i, j]))
                    num_inter += 1
            # Condition (ii): crossing pairs whose lower center is in
            # this chunk (pairs are stored (min, max), so a < b).
            for a, b in crossing:
                i = pos[a] - lo
                if 0 <= i < sub.shape[0]:
                    d = sub[i, pos[b]]
                    if np.isfinite(d) and not h.has_edge(a, b):
                        h.add_edge(a, b, float(d))
                        num_inter += 1
    else:
        center_set = set(centers)
        for a in centers:
            for b, d in dijkstra(spanner, a, cutoff=reach).items():
                if b not in center_set or b <= a:
                    continue  # handle each unordered pair once
                is_near = d <= w_prev  # condition (i)
                is_crossing = (a, b) in crossing  # condition (ii)
                if (is_near or is_crossing) and not h.has_edge(a, b):
                    h.add_edge(a, b, d)
                    num_inter += 1
    # Defensive: condition (ii) pairs must have been within the Lemma 5
    # reach; a miss means the cover or spanner handed to us is inconsistent.
    for a, b in crossing:
        if not h.has_edge(a, b):
            raise GraphError(
                f"inter-cluster edge ({a}, {b}) required by a crossing "
                f"spanner edge exceeds the Lemma 5 bound {reach:.6g}"
            )
    return ClusterGraph(
        graph=h,
        cover=cover,
        w_prev=w_prev,
        num_intra_edges=num_intra,
        num_inter_edges=num_inter,
    )
