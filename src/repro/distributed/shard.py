"""Sharded batch tier: the round engine over a spatial partition.

This module scales :class:`repro.distributed.engine.SynchronousNetwork`'s
batch tier past one core and one address space.  The CSR topology is
partitioned (spatially via :func:`grid_partition` when coordinates exist,
:func:`contiguous_partition` otherwise) and each shard runs the full
batch engine over a *ball* around its owned nodes:

* **owned rows** -- the shard's nodes, with their full adjacency rows;
* **1-hop halo rows** -- neighbors of owned nodes, also with full rows
  (their within-round outboxes feed owned inboxes, and computing an
  outbox may read the whole row plus 2-hop node state);
* **2-hop rim** -- neighbors of halo nodes, present with *empty* rows
  (only their node-kind state is ever read).

Everything lives in the **global index space**: every shard's context
has ``labels = arange(n)`` and a full-length ``indptr`` whose non-ball
rows are empty, so index-valued state (BFS parents, MIS winner ids)
transfers between shards verbatim.

After round 0 and after every round, shards exchange boundary state and
the owner of each node overwrites everyone else's copy (per-round
owner-authoritative sync, see :attr:`BatchProtocol.batch_state_sync`).
The correctness induction: an owned node's update reads only (a) its own
row's exchange, whose reverse slots sit on 1-hop rows -- their outbox is
a function of synced 1-hop state, full 1-hop rows, and synced 2-hop node
state; (b) 1-hop node state (synced); (c) its own slots (locally exact).
Every locally-computed halo/rim value is overwritten by sync, so it
never needs to be locally correct.

Accounting stays **bit-identical** to the single-process batch tier:
every global message has exactly one owned sender, shards bill only
owned senders (:meth:`BatchContext.post_nodes` / ``post_slots``), a
global round counts iff *any* shard's owned senders spoke, the loop runs
while the union of owned-active sets is non-empty, and outputs merge in
ascending node order -- so rounds, messages, words and outputs (insertion
order included) equal the single-process ``RunResult`` exactly, for any
shard count and any partition.  The partition only moves the
performance needle (halo size), never the results.

Execution backends: ``jobs=1`` runs every shard sequentially in-process
(the deterministic test path); ``jobs>1`` runs shards on a persistent
fork-based worker pool (one long-lived process per job, reused across
runs -- e.g. across the many MIS invocations of one distributed spanner
build), shipping per-run topology through ``multiprocessing.
shared_memory`` when large and exchanging only thin boundary payloads
per round.  Both backends share the exact same ``ShardState`` sync code.
"""

from __future__ import annotations

import atexit
import pickle
import traceback
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..arrayops import run_expand
from ..exceptions import ProtocolError, SimulationLimitError
from ..geometry.grid import GridIndex
from ..geometry.points import PointSet
from .engine import BatchContext, BatchProtocol, RunResult

__all__ = [
    "contiguous_partition",
    "grid_partition",
    "ShardPlan",
    "ShardSpec",
    "ShardState",
    "run_sharded",
    "shutdown_pools",
]

# Reserved payload key carrying the engine-level active mask.
_ACTIVE = "__active__"

# Ship the per-run load payload through shared memory above this size
# (below it, pipe pickling is cheaper than an shm round trip).
_SHM_MIN_BYTES = 1 << 20


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def contiguous_partition(n: int, shards: int) -> np.ndarray:
    """Balanced contiguous owner array: node ``i`` belongs to shard
    ``i * shards // n``.

    The fallback partition for bare CSR topologies (e.g. the proximity
    graph ``J``, whose node ids are the underlying point ids, so
    contiguous ranges are still loosely spatial for grid-ordered point
    sets).  Any partition yields identical results; only halo sizes --
    i.e. speed -- differ.
    """
    if shards < 1:
        raise ProtocolError(f"shards must be >= 1, got {shards}")
    if n <= 0:
        return np.empty(0, dtype=np.int64)
    return (np.arange(n, dtype=np.int64) * shards) // n


def grid_partition(
    points: PointSet, shards: int, *, cell_width: float = 1.0
) -> np.ndarray:
    """Spatial owner array from the grid-cell geometry.

    Buckets points with :class:`GridIndex` (cell width defaults to the
    unit-disk radius, so a shard's halo is at most one cell ring thick),
    then assigns whole cells to shards in cell-id order, balancing point
    counts.  Returns an ``(n,)`` int64 owner array for
    :meth:`SynchronousNetwork.run`'s ``partition`` parameter.
    """
    if shards < 1:
        raise ProtocolError(f"shards must be >= 1, got {shards}")
    n = points.coords.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if shards == 1:
        return np.zeros(n, dtype=np.int64)
    index = GridIndex(points, cell_width)
    order, starts, counts = index.cell_buckets()
    before = (starts[:-1]).astype(np.int64)  # points in earlier cells
    cell_shard = np.minimum((before * shards) // n, shards - 1)
    owner = np.empty(n, dtype=np.int64)
    owner[order] = np.repeat(cell_shard, counts)
    return owner


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
@dataclass
class ShardSpec:
    """One shard's slice of the plan (what a worker needs to run it).

    ``labels`` is the full global label array (shared, read-only);
    ``indptr``/``indices``/``rev`` are the shard-local CSR -- full rows
    for the owned + 1-hop ball, empty rows elsewhere -- in shard-local
    slot space.  The push/pull maps are precomputed sync indices: node
    maps are compact node positions, slot maps are shard-local slot ids
    aligned pairwise (both sides enumerate the same halo rows in the
    same order, so a sync is one fancy-index gather and one scatter).
    """

    shard: int
    labels: np.ndarray
    indptr: np.ndarray
    indices: np.ndarray
    rev: np.ndarray
    owned: np.ndarray
    owned_positions: np.ndarray
    ball: np.ndarray
    node_pull: dict[int, np.ndarray] = field(default_factory=dict)
    node_push: dict[int, np.ndarray] = field(default_factory=dict)
    slot_pull: dict[int, np.ndarray] = field(default_factory=dict)
    slot_push: dict[int, np.ndarray] = field(default_factory=dict)


@dataclass
class ShardPlan:
    """A validated partition plus every shard's :class:`ShardSpec`."""

    owner: np.ndarray
    shards: int
    specs: list[ShardSpec]

    @staticmethod
    def build(
        labels: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        owner: np.ndarray,
        shards: int,
    ) -> "ShardPlan":
        """Construct shard contexts and sync maps from a global CSR.

        ``owner`` maps each compact node position to its shard.  The
        global ``rev`` is not needed: each shard's reverse-slot
        permutation is recomputed over its own slot subset (reverse
        slots of 1-hop rows' edges into the rim do not exist locally and
        are pointed at themselves -- their exchanged values are garbage
        by construction and overwritten by sync).
        """
        n = labels.size
        owner = np.asarray(owner, dtype=np.int64)
        if owner.shape != (n,):
            raise ProtocolError(
                f"partition must have shape ({n},), got {owner.shape}"
            )
        if n and (owner.min() < 0 or owner.max() >= shards):
            raise ProtocolError(
                f"partition values must lie in [0, {shards}), "
                f"got [{int(owner.min())}, {int(owner.max())}]"
            )
        degrees = np.diff(indptr)
        g_sources = np.repeat(np.arange(n, dtype=np.int64), degrees)

        owned_masks: list[np.ndarray] = []
        full_masks: list[np.ndarray] = []
        ball_masks: list[np.ndarray] = []
        specs: list[ShardSpec] = []
        for s in range(shards):
            owned = owner == s
            full = owned.copy()
            full[indices[owned[g_sources]]] = True  # + 1-hop halo
            ball = full.copy()
            ball[indices[full[g_sources]]] = True  # + 2-hop rim
            owned_masks.append(owned)
            full_masks.append(full)
            ball_masks.append(ball)

            row_counts = np.where(full, degrees, 0)
            s_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(row_counts, out=s_indptr[1:])
            slot_sel = full[g_sources]
            s_indices = indices[slot_sel]
            s_src = g_sources[slot_sel]
            key_fwd = s_src * n + s_indices
            key_rev = s_indices * n + s_src
            pos = np.minimum(
                np.searchsorted(key_fwd, key_rev),
                max(key_fwd.size - 1, 0),
            )
            if key_fwd.size:
                present = key_fwd[pos] == key_rev
                s_rev = np.where(
                    present, pos, np.arange(key_fwd.size, dtype=np.int64)
                )
            else:
                s_rev = pos
            specs.append(
                ShardSpec(
                    shard=s,
                    labels=labels,
                    indptr=s_indptr,
                    indices=s_indices,
                    rev=s_rev,
                    owned=owned,
                    owned_positions=np.flatnonzero(owned),
                    ball=ball,
                )
            )

        # Pairwise sync maps.  Node values at shard s's ball positions
        # owned by t flow t -> s; slot values of s's halo rows owned by
        # t flow t -> s, aligned because both shards hold the identical
        # full global row.
        for s in range(shards):
            for t in range(shards):
                if s == t:
                    continue
                node_pos = np.flatnonzero(ball_masks[s] & owned_masks[t])
                if node_pos.size:
                    specs[s].node_pull[t] = node_pos
                    specs[t].node_push[s] = node_pos
                halo_rows = np.flatnonzero(
                    full_masks[s] & ~owned_masks[s] & owned_masks[t]
                )
                if halo_rows.size:
                    row_deg = degrees[halo_rows]
                    specs[s].slot_pull[t] = run_expand(
                        specs[s].indptr[halo_rows], row_deg
                    )
                    specs[t].slot_push[s] = run_expand(
                        specs[t].indptr[halo_rows], row_deg
                    )
        return ShardPlan(owner=owner, shards=shards, specs=specs)


# ----------------------------------------------------------------------
# Per-shard execution + sync (shared by both backends)
# ----------------------------------------------------------------------
def _extract_keys(
    keys: np.ndarray, nodes: np.ndarray, stride: int
) -> np.ndarray:
    """Entries of a sorted ``node * stride + fact`` key array belonging
    to the (sorted) ``nodes`` -- the ``node_keys`` sync extraction."""
    if keys.size == 0 or nodes.size == 0:
        return keys[:0]
    los = np.searchsorted(keys, nodes * stride)
    his = np.searchsorted(keys, (nodes + 1) * stride)
    return keys[run_expand(los, his - los)]


class ShardState:
    """One shard's engine context, protocol hooks and sync endpoints."""

    def __init__(self, spec: ShardSpec, protocol: BatchProtocol) -> None:
        self.spec = spec
        self.protocol = protocol
        self.sync_spec = dict(protocol.batch_state_sync)
        self.net = BatchContext(
            spec.labels, spec.indptr, spec.indices, spec.rev, owned=spec.owned
        )

    # -- rounds --------------------------------------------------------
    def start(self) -> tuple[bool, int]:
        self.net._sent_in_round = False
        self.protocol.on_start_batch(self.net)
        undeclared = set(self.net.state) - set(self.sync_spec)
        if undeclared:
            raise ProtocolError(
                f"{self.protocol.name}: state keys without a "
                f"batch_state_sync kind: {sorted(undeclared)}"
            )
        return self._stats()

    def round(self) -> tuple[bool, int]:
        self.net._sent_in_round = False
        self.protocol.on_round_batch(self.net)
        return self._stats()

    def _stats(self) -> tuple[bool, int]:
        """(spoke this round, owned nodes still active)."""
        owned_active = int(np.count_nonzero(self.net.active[self.spec.owned]))
        return bool(self.net._sent_in_round), owned_active

    # -- sync ----------------------------------------------------------
    def _stride(self) -> int:
        return int(self.net.state.get("stride", 1))

    def collect(self) -> dict[int, dict[str, Any]]:
        """Owner-authoritative payloads for every peer that mirrors a
        piece of this shard's owned state."""
        state = self.net.state
        out: dict[int, dict[str, Any]] = {}
        for peer, pos in self.spec.node_push.items():
            pkg: dict[str, Any] = {_ACTIVE: self.net.active[pos]}
            for key, kind in self.sync_spec.items():
                if kind == "node":
                    pkg[key] = state[key][pos]
                elif kind == "node_keys":
                    pkg[key] = _extract_keys(state[key], pos, self._stride())
            out[peer] = pkg
        for peer, src in self.spec.slot_push.items():
            pkg = out.setdefault(peer, {})
            for key, kind in self.sync_spec.items():
                if kind == "slot":
                    pkg[key] = state[key][src]
        return out

    def apply(self, incoming: dict[int, dict[str, Any]]) -> None:
        """Overwrite every non-owned mirrored value with its owner's."""
        state = self.net.state
        key_pieces: dict[str, list[np.ndarray]] = {
            key: [
                _extract_keys(
                    state[key], self.spec.owned_positions, self._stride()
                )
            ]
            for key, kind in self.sync_spec.items()
            if kind == "node_keys"
        }
        for peer, pkg in incoming.items():
            pos = self.spec.node_pull.get(peer)
            if pos is not None:
                self.net.active[pos] = pkg[_ACTIVE]
            dst = self.spec.slot_pull.get(peer)
            for key, kind in self.sync_spec.items():
                if key not in pkg:
                    continue
                if kind == "node":
                    state[key][pos] = pkg[key]
                elif kind == "slot":
                    state[key][dst] = pkg[key]
                elif kind == "node_keys":
                    key_pieces[key].append(pkg[key])
        for key, pieces in key_pieces.items():
            merged = np.concatenate(pieces)
            merged.sort()
            state[key] = merged

    # -- results -------------------------------------------------------
    def outputs(self) -> tuple[int, int, dict[int, Any]]:
        """(messages, words, owned outputs in ascending node order)."""
        full = self.protocol.outputs_batch(self.net)
        labels = self.spec.labels
        owned_out = {
            int(labels[p]): full[int(labels[p])]
            for p in self.spec.owned_positions.tolist()
        }
        return self.net._messages, self.net._words, owned_out


# ----------------------------------------------------------------------
# In-process backend (jobs=1)
# ----------------------------------------------------------------------
class _InProcessGroup:
    """Runs every shard sequentially in this process -- the
    deterministic reference backend the equality tests pin against."""

    def __init__(self, plan: ShardPlan, protocol: BatchProtocol) -> None:
        # Protocol instances carry run-independent config only (their
        # mutable state lives in each context's state bag), so one
        # instance is safely shared across in-process shards.
        self.states = [ShardState(spec, protocol) for spec in plan.specs]

    def start(self) -> tuple[bool, int]:
        results = [st.start() for st in self.states]
        self._route()
        return _aggregate(results)

    def round(self) -> tuple[bool, int]:
        results = [st.round() for st in self.states]
        self._route()
        return _aggregate(results)

    def _route(self) -> None:
        outbound = {s: st.collect() for s, st in enumerate(self.states)}
        for s, st in enumerate(self.states):
            st.apply(
                {t: pkgs[s] for t, pkgs in outbound.items() if s in pkgs}
            )

    def finish(self) -> tuple[int, int, list[dict[int, Any]]]:
        stats = [st.outputs() for st in self.states]
        return (
            sum(x[0] for x in stats),
            sum(x[1] for x in stats),
            [x[2] for x in stats],
        )

    def release(self) -> None:
        pass


def _aggregate(results) -> tuple[bool, int]:
    return any(r[0] for r in results), sum(r[1] for r in results)


# ----------------------------------------------------------------------
# Worker-pool backend (jobs>1)
# ----------------------------------------------------------------------
def _worker_main(conn) -> None:  # pragma: no cover - runs in workers
    """Long-lived shard host: loads specs per run, then answers
    start/step/outputs commands until told to quit."""
    states: dict[int, ShardState] = {}
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        try:
            if cmd in ("load-pickle", "load-shm"):
                if cmd == "load-pickle":
                    protocol, specs = pickle.loads(msg[1])
                else:
                    from multiprocessing import resource_tracker
                    from multiprocessing import shared_memory

                    shm = shared_memory.SharedMemory(name=msg[1])
                    try:
                        protocol, specs = pickle.loads(bytes(shm.buf[: msg[2]]))
                    finally:
                        shm.close()
                        # Attaching registers the segment with the
                        # resource tracker even though the parent owns
                        # (and unlinks) it; unregister or the tracker
                        # reports every load as leaked at shutdown.
                        try:
                            resource_tracker.unregister(
                                shm._name, "shared_memory"
                            )
                        except Exception:
                            pass
                states = {
                    spec.shard: ShardState(spec, protocol) for spec in specs
                }
                conn.send(("ok", None))
            elif cmd == "start":
                results = {sid: st.start() for sid, st in states.items()}
                outbound = {sid: st.collect() for sid, st in states.items()}
                conn.send(("ok", (results, outbound)))
            elif cmd == "step":
                for sid, inbox in msg[1].items():
                    states[sid].apply(inbox)
                results = {sid: st.round() for sid, st in states.items()}
                outbound = {sid: st.collect() for sid, st in states.items()}
                conn.send(("ok", (results, outbound)))
            elif cmd == "outputs":
                conn.send(
                    ("ok", {sid: st.outputs() for sid, st in states.items()})
                )
            elif cmd == "unload":
                states = {}
            elif cmd == "quit":
                break
        except BaseException:
            try:
                conn.send(("error", traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
    conn.close()


class _ShardPool:
    """A persistent set of fork-spawned worker processes."""

    def __init__(self, jobs: int) -> None:
        import multiprocessing as mp

        ctx = mp.get_context("fork")
        self.jobs = jobs
        self.workers: list[tuple[Any, Any]] = []
        for _ in range(jobs):
            parent, child = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child,), daemon=True
            )
            proc.start()
            child.close()
            self.workers.append((proc, parent))

    def alive(self) -> bool:
        return all(proc.is_alive() for proc, _ in self.workers)

    def close(self) -> None:
        for proc, conn in self.workers:
            try:
                conn.send(("quit",))
            except (BrokenPipeError, OSError):
                pass
            conn.close()
        for proc, _ in self.workers:
            proc.join(timeout=2.0)
            if proc.is_alive():
                proc.terminate()
        self.workers = []


_POOLS: dict[int, _ShardPool] = {}


def _get_pool(jobs: int) -> _ShardPool:
    pool = _POOLS.get(jobs)
    if pool is not None and pool.alive():
        return pool
    if pool is not None:
        pool.close()
    pool = _ShardPool(jobs)
    _POOLS[jobs] = pool
    return pool


def shutdown_pools() -> None:
    """Terminate every cached worker pool (tests and interpreter exit)."""
    for pool in _POOLS.values():
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)


def _ship(conn, payload: Any):
    """Send a large load payload, via shared memory when it pays off.

    Returns the shm handle the caller must unlink after the worker acks
    (``None`` on the plain-pipe path or when shm is unavailable).
    """
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) >= _SHM_MIN_BYTES:
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(create=True, size=len(data))
        except Exception:
            shm = None
        if shm is not None:
            shm.buf[: len(data)] = data
            conn.send(("load-shm", shm.name, len(data)))
            return shm
    conn.send(("load-pickle", data))
    return None


class _PoolGroup:
    """Drives one sharded run on a persistent worker pool.

    Shard ``i`` lives on worker ``i % jobs``; the coordinator routes
    each round's thin boundary payloads between workers (sync-then-step
    is one message pair per worker per round).
    """

    def __init__(
        self, plan: ShardPlan, protocol: BatchProtocol, pool: _ShardPool
    ) -> None:
        self.pool = pool
        self.shard_worker = {
            spec.shard: spec.shard % pool.jobs for spec in plan.specs
        }
        self.used = sorted(set(self.shard_worker.values()))
        by_worker: dict[int, list[ShardSpec]] = {w: [] for w in self.used}
        for spec in plan.specs:
            by_worker[self.shard_worker[spec.shard]].append(spec)
        handles = []
        for w in self.used:
            conn = self.pool.workers[w][1]
            handles.append(_ship(conn, (protocol, by_worker[w])))
        for w in self.used:
            self._recv(w)
        for shm in handles:
            if shm is not None:
                shm.close()
                shm.unlink()
        self._pending: dict[int, dict[int, dict[int, Any]]] = {}

    def _recv(self, worker: int) -> Any:
        conn = self.pool.workers[worker][1]
        try:
            status, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise RuntimeError(
                "shard worker died mid-run (pool will be rebuilt)"
            ) from exc
        if status == "error":
            raise RuntimeError(f"shard worker failed:\n{payload}")
        return payload

    def start(self) -> tuple[bool, int]:
        for w in self.used:
            self.pool.workers[w][1].send(("start",))
        return self._absorb([self._recv(w) for w in self.used])

    def round(self) -> tuple[bool, int]:
        for w in self.used:
            self.pool.workers[w][1].send(("step", self._pending.get(w, {})))
        return self._absorb([self._recv(w) for w in self.used])

    def _absorb(self, replies) -> tuple[bool, int]:
        results: dict[int, tuple[bool, int]] = {}
        pending: dict[int, dict[int, dict[int, Any]]] = {}
        for reply in replies:
            shard_results, outbound = reply
            results.update(shard_results)
            for t, pkgs in outbound.items():
                for s, pkg in pkgs.items():
                    w = self.shard_worker[s]
                    pending.setdefault(w, {}).setdefault(s, {})[t] = pkg
        self._pending = pending
        return _aggregate(list(results.values()))

    def finish(self) -> tuple[int, int, list[dict[int, Any]]]:
        for w in self.used:
            self.pool.workers[w][1].send(("outputs",))
        merged: dict[int, tuple[int, int, dict[int, Any]]] = {}
        for w in self.used:
            merged.update(self._recv(w))
        per_shard = [merged[s] for s in sorted(merged)]
        return (
            sum(x[0] for x in per_shard),
            sum(x[1] for x in per_shard),
            [x[2] for x in per_shard],
        )

    def release(self) -> None:
        for w in self.used:
            try:
                self.pool.workers[w][1].send(("unload",))
            except (BrokenPipeError, OSError):
                pass


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_sharded(
    arrays: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    protocol: BatchProtocol,
    *,
    shards: int,
    jobs: int = 1,
    partition: np.ndarray | None = None,
    max_rounds: int = 10_000,
) -> RunResult:
    """Run a shard-capable protocol over a partitioned topology.

    ``arrays`` is the engine's ``(labels, indptr, indices, rev)``
    snapshot.  Called via :meth:`SynchronousNetwork.run`; see the module
    docstring for the execution and equality contract.
    """
    labels, indptr, indices, _ = arrays
    n = labels.size
    if partition is None:
        owner = contiguous_partition(n, shards)
    else:
        owner = np.asarray(partition, dtype=np.int64)
    plan = ShardPlan.build(labels, indptr, indices, owner, shards)

    # More workers than shards is pointless; more workers than cores is
    # the caller's call (oversubscription still overlaps with the
    # coordinator's routing work).
    jobs = max(1, min(int(jobs), shards))
    if jobs > 1:
        try:
            group: Any = _PoolGroup(plan, protocol, _get_pool(jobs))
        except (ValueError, OSError, RuntimeError):
            # No fork on this platform (or the pool refused to come up):
            # the sequential backend is bit-identical, just slower.
            group = _InProcessGroup(plan, protocol)
    else:
        group = _InProcessGroup(plan, protocol)

    try:
        sent, active_total = group.start()
        rounds = 1 if sent else 0
        while active_total:
            if rounds >= max_rounds:
                raise SimulationLimitError(
                    f"{protocol.name}: exceeded {max_rounds} rounds "
                    f"({active_total} nodes still active)"
                )
            sent, active_total = group.round()
            rounds += 1
        messages, words, owned_outputs = group.finish()
    finally:
        group.release()

    outputs: dict[int, Any] = {}
    labels_list = labels.tolist()
    owner_list = owner.tolist()
    for pos in range(n):
        lab = int(labels_list[pos])
        outputs[lab] = owned_outputs[owner_list[pos]][lab]
    return RunResult(
        rounds=rounds, messages=messages, words=words, outputs=outputs
    )
