"""Mutually-redundant edge elimination (Section 2.2.5).

Because all queries of a phase are answered against the *frozen* cluster
graph ``H_{i-1}``, two edges added in the same phase can each certify the
other's t-spanner path.  Edges ``{u, v}`` and ``{u', v'}`` are *mutually
redundant* when both

* ``sp_H(u, u') + |u'v'| + sp_H(v', v) <= t1 * |uv|`` and
* ``sp_H(u', u) + |uv| + sp_H(v, v') <= t1 * |u'v'|``

hold (or both hold under the opposite endpoint pairing -- the metric
``d_J`` of Lemma 20 takes the minimum over the two pairings, and we follow
that).  The weight proof (Theorem 13) *requires* that no mutually
redundant pair survives, so the algorithm builds a conflict graph ``J``
with one node per implicated edge, one ``J``-edge per redundant pair,
computes an MIS ``I`` of ``J`` and deletes every implicated edge outside
``I``.  Every deleted edge keeps a surviving counterpart (MIS maximality),
preserving Theorem 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

import numpy as np

from ..exceptions import GraphError
from ..graphs.graph import Graph
from .cluster_graph import ClusterGraph

__all__ = [
    "RedundancyOutcome",
    "greedy_mis",
    "find_redundant_pairs",
    "find_redundant_pairs_reference",
    "build_conflict_graph",
    "conflict_graph_arrays",
    "remove_redundant_edges",
]

Edge = tuple[int, int, float]
EdgeKey = tuple[int, int]

#: An MIS routine over an adjacency mapping ``node -> set of neighbors``.
MISFunction = Callable[[dict[EdgeKey, set[EdgeKey]]], set[EdgeKey]]


@dataclass(frozen=True)
class RedundancyOutcome:
    """Result of one phase's redundancy elimination.

    Attributes
    ----------
    removed:
        Edges deleted from the phase's additions.
    kept:
        Edges retained (MIS members and unimplicated edges).
    num_pairs:
        Number of mutually redundant pairs found.
    conflict_graph:
        Adjacency of the conflict graph ``J`` (edge-keys as nodes).
    """

    removed: tuple[Edge, ...]
    kept: tuple[Edge, ...]
    num_pairs: int
    conflict_graph: dict[EdgeKey, set[EdgeKey]]


def greedy_mis(adjacency: dict[EdgeKey, set[EdgeKey]]) -> set[EdgeKey]:
    """Sequential greedy MIS by node id (reference MIS implementation).

    Scans nodes in sorted order, taking a node iff none of its neighbors
    was taken.  Output is maximal and independent; the distributed
    algorithm substitutes a protocol-based MIS with the same contract.
    """
    chosen: set[EdgeKey] = set()
    for node in sorted(adjacency):
        if not adjacency[node] & chosen:
            chosen.add(node)
    return chosen


def _edge_key(edge: Edge) -> EdgeKey:
    u, v, _ = edge
    return (u, v) if u < v else (v, u)


def _mutually_redundant(
    e1: Edge,
    e2: Edge,
    h_dist: Callable[[int, int], float],
    t1: float,
) -> bool:
    """Check both endpoint pairings of the Section 2.2.5 conditions."""
    u, v, w1 = e1
    x, y, w2 = e2
    for p, q in (((u, x), (v, y)), ((u, y), (v, x))):
        s1 = h_dist(*p)
        s2 = h_dist(*q)
        if s1 + w2 + s2 <= t1 * w1 and s1 + w1 + s2 <= t1 * w2:
            return True
    return False


def _endpoint_distance_matrix(
    cluster_graph: ClusterGraph, endpoints: list[int], cutoff: float
) -> np.ndarray:
    """``D[i, j] = sp_H(endpoints[i], endpoints[j])`` within ``cutoff``.

    One :meth:`ClusterGraph.distance_matrix` call over the endpoint
    cross product -- the graph-metric batched oracle query, which picks
    dense blocked rows when the cutoff balls are wide and the sparse
    frontier-sharing scatter when they are tiny.  Entries beyond
    ``cutoff`` hold ``inf``.
    """
    ep_arr = np.asarray(endpoints, dtype=np.int64)
    return cluster_graph.distance_matrix(ep_arr, ep_arr, cutoff=cutoff)


def find_redundant_pairs(
    added: list[Edge],
    cluster_graph: ClusterGraph,
    t1: float,
    *,
    w_cur: float,
) -> list[tuple[Edge, Edge]]:
    """All mutually redundant pairs among this phase's added edges.

    The O(|added|^2) pairwise test runs as one broadcast over stacked
    endpoint distance rows: both endpoint pairings of the Section 2.2.5
    conditions are evaluated for every ordered pair at once, then the
    upper triangle is read off in the reference's ``(i, j)`` loop order.
    Bit-identical to :func:`find_redundant_pairs_reference` (same float
    expressions in the same evaluation order), which the equivalence
    suite pins.

    Parameters
    ----------
    added:
        Edges added in the current phase (all lengths in
        ``(W_{i-1}, W_i]``).
    cluster_graph:
        The frozen ``H_{i-1}`` used for the phase's queries.
    t1:
        Redundancy stretch, ``1 < t1 < t``.
    w_cur:
        Current bin boundary ``W_i``; redundancy conditions can only hold
        when ``sp_H`` terms are at most ``t1 * W_i``, so Dijkstra runs are
        cut off there.
    """
    if t1 <= 1.0:
        raise GraphError(f"t1 must be > 1, got {t1}")
    if not added:
        return []
    cutoff = t1 * w_cur
    endpoints = sorted({p for u, v, _ in added for p in (u, v)})
    D = _endpoint_distance_matrix(cluster_graph, endpoints, cutoff)
    index = {p: i for i, p in enumerate(endpoints)}
    iu = np.asarray([index[u] for u, _, _ in added], dtype=np.int64)
    iv = np.asarray([index[v] for _, v, _ in added], dtype=np.int64)
    w = np.asarray([length for _, _, length in added], dtype=np.float64)
    w_i, w_j = w[:, None], w[None, :]
    # Pairing (u, x), (v, y): s1 = sp_H(u, x), s2 = sp_H(v, y).
    s1 = D[iu[:, None], iu[None, :]]
    s2 = D[iv[:, None], iv[None, :]]
    red = (s1 + w_j + s2 <= t1 * w_i) & (s1 + w_i + s2 <= t1 * w_j)
    # Pairing (u, y), (v, x) -- the d_J minimum over both pairings.
    s1 = D[iu[:, None], iv[None, :]]
    s2 = D[iv[:, None], iu[None, :]]
    red |= (s1 + w_j + s2 <= t1 * w_i) & (s1 + w_i + s2 <= t1 * w_j)
    red &= np.tri(len(added), k=-1, dtype=bool).T  # strict upper triangle
    return [
        (added[i], added[j]) for i, j in np.argwhere(red).tolist()
    ]


def find_redundant_pairs_reference(
    added: list[Edge],
    cluster_graph: ClusterGraph,
    t1: float,
    *,
    w_cur: float,
) -> list[tuple[Edge, Edge]]:
    """Scalar reference: per-endpoint dict rows + Python double loop.

    The semantic anchor :func:`find_redundant_pairs` is pinned against.
    """
    if t1 <= 1.0:
        raise GraphError(f"t1 must be > 1, got {t1}")
    if not added:
        return []
    cutoff = t1 * w_cur
    endpoints = sorted({p for u, v, _ in added for p in (u, v)})
    rows = {
        p: cluster_graph.distances_from(p, cutoff=cutoff) for p in endpoints
    }

    def h_dist(a: int, b: int) -> float:
        return rows[a].get(b, float("inf"))

    pairs: list[tuple[Edge, Edge]] = []
    for i, e1 in enumerate(added):
        for e2 in added[i + 1 :]:
            if _mutually_redundant(e1, e2, h_dist, t1):
                pairs.append((e1, e2))
    return pairs


def build_conflict_graph(
    pairs: Iterable[tuple[Edge, Edge]],
) -> dict[EdgeKey, set[EdgeKey]]:
    """Conflict graph ``J``: nodes are implicated edges, arcs are pairs."""
    adjacency: dict[EdgeKey, set[EdgeKey]] = {}
    for e1, e2 in pairs:
        k1, k2 = _edge_key(e1), _edge_key(e2)
        adjacency.setdefault(k1, set()).add(k2)
        adjacency.setdefault(k2, set()).add(k1)
    return adjacency


def conflict_graph_arrays(
    pairs: Iterable[tuple[Edge, Edge]],
    num_vertices: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Conflict graph ``J`` as CSR arrays over sorted edge keys.

    The dict-free twin of :func:`build_conflict_graph`: node ``i`` is
    the ``i``-th implicated edge key in ascending ``(u, v)`` order --
    exactly the relabeling ``repro.distributed.mis._normalize`` applies
    to the mapping form -- so a protocol MIS over the returned CSR
    selects the same keys, with the same round and message counts, as
    the dict path (the equivalence suite pins this).

    Returns ``(key_u, key_v, indptr, indices)`` where ``(key_u[i],
    key_v[i])`` is node ``i``'s edge key and ``(indptr, indices)`` is
    the symmetric loop-free adjacency over nodes ``0..k-1``.
    """
    pair_list = list(pairs)
    empty = np.empty(0, dtype=np.int64)
    if not pair_list:
        return empty, empty, np.zeros(1, dtype=np.int64), empty
    stride = np.int64(num_vertices)
    enc = np.empty((len(pair_list), 2), dtype=np.int64)
    for row, (e1, e2) in enumerate(pair_list):
        u1, v1 = _edge_key(e1)
        u2, v2 = _edge_key(e2)
        enc[row, 0] = u1 * stride + v1
        enc[row, 1] = u2 * stride + v2
    # Sorted unique keys give the node ids; lexicographic tuple order
    # and encoded-integer order agree because 0 <= u < v < stride.
    nodes = np.unique(enc)
    k = np.int64(nodes.size)
    a = np.searchsorted(nodes, enc[:, 0])
    b = np.searchsorted(nodes, enc[:, 1])
    arcs = np.unique(np.concatenate([a * k + b, b * k + a]))
    indptr = np.searchsorted(
        arcs, np.arange(nodes.size + 1, dtype=np.int64) * k
    )
    return nodes // stride, nodes % stride, indptr, arcs % k


def remove_redundant_edges(
    spanner: Graph,
    added: list[Edge],
    cluster_graph: ClusterGraph,
    t1: float,
    *,
    w_cur: float,
    mis: MISFunction = greedy_mis,
) -> RedundancyOutcome:
    """Delete a maximal independent set's complement from ``J``.

    Mutates ``spanner`` (removing the chosen edges) and reports the
    outcome.  ``mis`` may be replaced by a distributed MIS with the same
    contract.
    """
    pairs = find_redundant_pairs(added, cluster_graph, t1, w_cur=w_cur)
    adjacency = build_conflict_graph(pairs)
    keep_keys = mis(adjacency) if adjacency else set()
    removed: list[Edge] = []
    kept: list[Edge] = []
    for edge in added:
        key = _edge_key(edge)
        if key in adjacency and key not in keep_keys:
            spanner.remove_edge(edge[0], edge[1])
            removed.append(edge)
        else:
            kept.append(edge)
    return RedundancyOutcome(
        removed=tuple(removed),
        kept=tuple(kept),
        num_pairs=len(pairs),
        conflict_graph=adjacency,
    )
