"""Benchmark harness conventions.

Every experiment bench runs its experiment in *quick* mode exactly once
(``pedantic(rounds=1)``): the value measured is the end-to-end cost of
regenerating that experiment's table, and the assertion re-checks the
claim's shape so a performance run doubles as a correctness run.  The
printed tables land in stdout (run with ``-s`` to see them); the recorded
rows for the paper-facing record live in EXPERIMENTS.md, produced by
``python -m repro.experiments.run_all``.

Persistence: every ``run_experiment`` invocation -- and any bench using
the ``bench_store`` fixture directly -- appends its measurement to the
JSON trajectory store under ``results/bench/`` (one file per bench plus
``index.json``), so BENCH numbers accumulate run-to-run instead of
evaporating with the terminal scrollback.  Point ``REPRO_BENCH_DIR`` at
another directory to redirect.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture()
def bench_store():
    """The run-to-run JSON trajectory store for bench measurements."""
    from repro.experiments.bench_store import BenchStore

    return BenchStore(os.environ.get("REPRO_BENCH_DIR", "results/bench"))


@pytest.fixture()
def run_experiment(benchmark, bench_store):
    """Run a registered experiment under the benchmark clock, assert its
    claim held, and append the measurement to the trajectory store."""
    from repro.experiments import EXPERIMENT_REGISTRY

    def _run(name: str, quick: bool = True, seed: int = 0):
        fn = EXPERIMENT_REGISTRY[name]
        result = benchmark.pedantic(
            lambda: fn(quick=quick, seed=seed), rounds=1, iterations=1
        )
        print()
        print(result.to_text())
        assert result.passed, f"{name} claim-shape failed"
        bench_store.append(
            f"experiment-{name}",
            {
                "quick": quick,
                "seed": seed,
                "passed": result.passed,
                "wall_s": benchmark.stats.stats.mean,
                "rows": result.rows,
            },
        )
        return result

    return _run
