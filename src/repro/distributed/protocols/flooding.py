"""k-hop information gathering by flooding.

The paper's distributed algorithm repeatedly has nodes "gather information
from at most k hops away" (Sections 3.1--3.2.4).  In the LOCAL model this
is exactly ``k`` rounds of flooding: every node starts with a set of local
*facts* (e.g. its incident spanner edges) and forwards newly learned facts
to all neighbors each round.  After ``k`` rounds a node knows precisely
the facts originating within its ``k``-hop ball -- the engine-level proof
of Theorems 14 and 16--19's round counts, and the property our tests
assert against :func:`repro.graphs.paths.k_hop_neighborhood`.
"""

from __future__ import annotations

from typing import Any, Hashable, Mapping

from ...exceptions import ProtocolError
from ..engine import NodeContext, Protocol

__all__ = ["KHopGather"]


class KHopGather(Protocol):
    """Flood each node's initial facts for ``k`` rounds.

    Parameters
    ----------
    initial_facts:
        ``node -> iterable of hashable facts`` owned by that node at
        round 0.  Facts must be globally unique or idempotent (sets are
        unioned).
    k:
        Hop radius; after the run each node's output is the set of facts
        originating at nodes within ``k`` hops (including itself).
    """

    name = "k-hop-gather"

    def __init__(self, initial_facts: Mapping[int, Any], k: int) -> None:
        if k < 0:
            raise ProtocolError(f"k must be >= 0, got {k}")
        self._facts = {
            node: frozenset(facts) for node, facts in initial_facts.items()
        }
        self._k = k

    def on_start(self, ctx: NodeContext) -> dict[int, Any] | None:
        known: set[Hashable] = set(self._facts.get(ctx.node, frozenset()))
        ctx.state["known"] = known
        ctx.state["age"] = 0
        if self._k == 0:
            ctx.halt()
            return None
        fresh = frozenset(known)
        return {v: fresh for v in ctx.neighbors} if fresh else {
            v: frozenset() for v in ctx.neighbors
        }

    def on_round(
        self, ctx: NodeContext, inbox: dict[int, Any]
    ) -> dict[int, Any] | None:
        known: set[Hashable] = ctx.state["known"]
        fresh: set[Hashable] = set()
        for payload in inbox.values():
            fresh.update(payload - known if isinstance(payload, frozenset) else [])
            known.update(payload)
        ctx.state["age"] += 1
        if ctx.state["age"] >= self._k:
            ctx.halt()
            return None
        return {v: frozenset(fresh) for v in ctx.neighbors}

    def output(self, ctx: NodeContext) -> frozenset:
        """Facts known to this node after ``k`` rounds."""
        return frozenset(ctx.state["known"])
