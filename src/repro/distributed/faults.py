"""Composable fault plans for the event-driven execution tier.

A :class:`FaultPlan` describes everything adversarial about the network a
protocol runs on: i.i.d. and bursty message loss, node crash/recover
schedules, link up/down flaps, per-edge latency jitter and per-node clock
drift.  Every decision is a pure function of ``(seed, identifiers,
counters)`` through the counter-based SplitMix64/Murmur3 hash of
:mod:`repro.arrayops` -- the same family driving Luby priorities and the
gray-zone policies -- so a run of :class:`repro.distributed.event_engine.
EventNetwork` is bit-reproducible from its seed regardless of event
ordering, platform, or how many times draws are evaluated.

Draw streams are separated by mixing a small stream tag into the seed, so
e.g. crash decisions never correlate with drop decisions.  Per-edge draws
key on ``u * 2**21 + v`` (directed); node ids must stay below ``2**21``
(~2M nodes), far above anything the experiments build.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from ..arrayops import counter_uniform, counter_uniforms, seed_state
from ..exceptions import ProtocolError

__all__ = ["FaultPlan"]

_NODE_SPAN = 1 << 21

# Stream tags (mixed into the seed, one hash state per decision family).
_T_CRASH, _T_CRASH_AT, _T_DROP, _T_BURST, _T_FLAP, _T_LAT, _T_DRIFT = range(7)


def _edge_key(u: int, v: int) -> int:
    if u >= _NODE_SPAN or v >= _NODE_SPAN:
        raise ProtocolError(
            f"FaultPlan edge draws support node ids < {_NODE_SPAN}, "
            f"got ({u}, {v})"
        )
    return u * _NODE_SPAN + v


def _link_key(u: int, v: int) -> int:
    return _edge_key(u, v) if u <= v else _edge_key(v, u)


def _edge_keys(us: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_edge_key`, naming the first offending pair."""
    big = (us >= _NODE_SPAN) | (vs >= _NODE_SPAN)
    if big.any():
        i = int(np.argmax(big))
        raise ProtocolError(
            f"FaultPlan edge draws support node ids < {_NODE_SPAN}, "
            f"got ({int(us[i])}, {int(vs[i])})"
        )
    return us * _NODE_SPAN + vs


def _link_keys(us: np.ndarray, vs: np.ndarray) -> np.ndarray:
    return _edge_keys(np.minimum(us, vs), np.maximum(us, vs))


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic adversary for one :class:`EventNetwork` run.

    Parameters
    ----------
    seed:
        Drives every random decision below (crash draws, drop draws,
        latencies, drift).  Two plans differing only in seed describe the
        same fault *intensity* over independent randomness.
    drop_rate:
        I.i.d. probability that any single transmission is lost.
    burst_rate, burst_drop, burst_window:
        Bursty loss: each undirected link independently enters a *burst*
        during any window of ``burst_window`` time units with probability
        ``burst_rate``; transmissions during a burst are dropped with
        probability ``burst_drop`` (on top of ``drop_rate``).
    crash_rate, crash_window, recover_after:
        Each node independently crashes with probability ``crash_rate``,
        at a time drawn uniformly from ``crash_window``.  Crashed nodes
        receive nothing and execute nothing.  ``recover_after`` (time
        units) schedules a recovery; ``None`` means fail-stop.
    flap_rate, flap_period, flap_down:
        Each undirected link independently *flaps* with probability
        ``flap_rate``: it is down (drops everything) for the first
        ``flap_down`` fraction of every ``flap_period``-length cycle,
        phase-shifted per link.
    latency, jitter:
        Per-transmission delivery delay ``latency + jitter * U`` with
        ``U ~ Uniform[0, 1)`` per (edge, send counter).  ``jitter=0``
        with ``latency=1`` is the synchronous model's unit delay.
    drift:
        Per-node clock-rate skew: node clocks run at ``1 + drift *
        (2U - 1)`` times real time (timer delays divide by the rate).
    """

    seed: int = 0
    drop_rate: float = 0.0
    burst_rate: float = 0.0
    burst_drop: float = 0.9
    burst_window: float = 16.0
    crash_rate: float = 0.0
    crash_window: tuple[float, float] = (0.0, 64.0)
    recover_after: float | None = None
    flap_rate: float = 0.0
    flap_period: float = 24.0
    flap_down: float = 0.35
    latency: float = 1.0
    jitter: float = 0.0
    drift: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_rate", "burst_rate", "burst_drop", "crash_rate",
                     "flap_rate", "flap_down"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ProtocolError(
                    f"FaultPlan.{name} must be a probability, got {value}"
                )
        if self.latency <= 0.0:
            raise ProtocolError(
                f"FaultPlan.latency must be > 0, got {self.latency}"
            )
        if self.jitter < 0.0 or self.drift < 0.0 or self.drift >= 1.0:
            raise ProtocolError(
                "FaultPlan.jitter must be >= 0 and drift in [0, 1), got "
                f"jitter={self.jitter} drift={self.drift}"
            )
        if self.burst_window <= 0.0 or self.flap_period <= 0.0:
            raise ProtocolError("FaultPlan windows/periods must be > 0")
        if self.crash_window[1] < self.crash_window[0]:
            raise ProtocolError(
                f"FaultPlan.crash_window must be ordered, got "
                f"{self.crash_window}"
            )
        if self.recover_after is not None and self.recover_after <= 0.0:
            raise ProtocolError(
                f"FaultPlan.recover_after must be > 0, got "
                f"{self.recover_after}"
            )
        # Premixed per-stream hash states, kept as plain Python ints: the
        # scalar draw path is pure int arithmetic and one transmission
        # makes up to four draws, so re-deriving the state each call was
        # measurable in fault-run profiles.
        object.__setattr__(
            self,
            "_states",
            tuple(
                int(seed_state(self.seed * 1_000_003 + tag))
                for tag in range(7)
            ),
        )

    # ------------------------------------------------------------------
    @classmethod
    def reliable(cls, *, latency: float = 1.0) -> "FaultPlan":
        """The zero-fault plan (unit latency by default): the event tier
        under this plan is pinned equal to the synchronous scalar tier."""
        return cls(latency=latency)

    @property
    def zero_fault(self) -> bool:
        """True iff no transmission can ever be lost, delayed unevenly,
        or see a crashed endpoint."""
        return (
            self.drop_rate == 0.0
            and self.burst_rate == 0.0
            and self.crash_rate == 0.0
            and self.flap_rate == 0.0
            and self.jitter == 0.0
            and self.drift == 0.0
        )

    def with_seed(self, seed: int) -> "FaultPlan":
        """Same fault intensity, fresh randomness."""
        return replace(self, seed=seed)

    def _state(self, tag: int) -> int:
        return self._states[tag]

    # ------------------------------------------------------------------
    # Node-level decisions
    # ------------------------------------------------------------------
    def crash_schedule(self, node: int) -> tuple[float, float | None] | None:
        """``(crash_time, recover_time | None)`` for ``node``, or ``None``
        if the node never crashes under this plan."""
        if self.crash_rate == 0.0:
            return None
        if counter_uniform(self._state(_T_CRASH), node, 0) >= self.crash_rate:
            return None
        lo, hi = self.crash_window
        at = lo + counter_uniform(self._state(_T_CRASH_AT), node, 0) * (hi - lo)
        back = None if self.recover_after is None else at + self.recover_after
        return at, back

    def dead_at(self, node: int, at: float) -> bool:
        """Whether ``node`` is crashed (and not yet recovered) at global
        time ``at`` -- how multi-run pipelines sharing one timeline ask
        who is down between protocol executions."""
        sched = self.crash_schedule(node)
        if sched is None:
            return False
        crash, back = sched
        if at < crash:
            return False
        return back is None or at < back

    def clock_rate(self, node: int) -> float:
        """Node-local clock speed relative to global time (1.0 = exact)."""
        if self.drift == 0.0:
            return 1.0
        u = counter_uniform(self._state(_T_DRIFT), node, 0)
        return 1.0 + self.drift * (2.0 * u - 1.0)

    # ------------------------------------------------------------------
    # Edge-level decisions
    # ------------------------------------------------------------------
    def latency_of(self, u: int, v: int, counter: int) -> float:
        """Delivery delay of the ``counter``-th transmission ``u -> v``."""
        if self.jitter == 0.0:
            return self.latency
        draw = counter_uniform(self._state(_T_LAT), _edge_key(u, v), counter)
        return self.latency + self.jitter * draw

    def link_down(self, u: int, v: int, at: float) -> bool:
        """Whether the undirected link ``{u, v}`` is flapped down at
        global time ``at``."""
        if self.flap_rate == 0.0:
            return False
        key = _link_key(u, v)
        state = self._state(_T_FLAP)
        if counter_uniform(state, key, 0) >= self.flap_rate:
            return False
        phase = counter_uniform(state, key, 1)
        cycle = (at / self.flap_period + phase) % 1.0
        return cycle < self.flap_down

    def dropped(self, u: int, v: int, counter: int, at: float) -> bool:
        """Whether the ``counter``-th transmission ``u -> v`` (sent at
        global time ``at``) is lost -- by flap, burst, or i.i.d. loss."""
        if self.link_down(u, v, at):
            return True
        key = _edge_key(u, v)
        if self.burst_rate > 0.0:
            window = int(at // self.burst_window)
            state = self._state(_T_BURST)
            bursting = (
                counter_uniform(state, _link_key(u, v), window)
                < self.burst_rate
            )
            if bursting and (
                counter_uniform(state, key, counter) < self.burst_drop
            ):
                return True
        if self.drop_rate > 0.0:
            return (
                counter_uniform(self._state(_T_DROP), key, counter)
                < self.drop_rate
            )
        return False

    # ------------------------------------------------------------------
    # Vectorized draw kernels (batch event engine)
    # ------------------------------------------------------------------
    # Each kernel is the array-native form of the scalar method above and
    # is bit-for-bit equal to calling it elementwise: every draw is a pure
    # function of (seed, identifiers, counter), so composing full masks
    # instead of short-circuiting changes nothing.  The batch event engine
    # defers an epoch's drop/latency draws and evaluates them here in one
    # hash pass per stream.

    def crash_schedules(
        self, nodes: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(crash_at, recover_at)`` float64 arrays over ``nodes``;
        ``inf`` marks never-crashes (both) and fail-stop (recover only)."""
        nodes = np.asarray(nodes, dtype=np.int64)
        crash_at = np.full(nodes.shape, np.inf)
        recover_at = np.full(nodes.shape, np.inf)
        if self.crash_rate == 0.0:
            return crash_at, recover_at
        hit = (
            counter_uniforms(self._state(_T_CRASH), nodes, 0)
            < self.crash_rate
        )
        lo, hi = self.crash_window
        at = lo + counter_uniforms(self._state(_T_CRASH_AT), nodes, 0) * (
            hi - lo
        )
        crash_at[hit] = at[hit]
        if self.recover_after is not None:
            recover_at[hit] = at[hit] + self.recover_after
        return crash_at, recover_at

    def alive_at(self, nodes: np.ndarray, at: float) -> np.ndarray:
        """Boolean mask over ``nodes``: not crashed (or already recovered)
        at global time ``at``.  Elementwise ``not dead_at(node, at)``."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if self.crash_rate == 0.0:
            return np.ones(nodes.shape, dtype=bool)
        crash_at, recover_at = self.crash_schedules(nodes)
        dead = (at >= crash_at) & (at < recover_at)
        if self.recover_after is None:
            dead = at >= crash_at
        return ~dead

    def clock_rates(self, nodes: np.ndarray) -> np.ndarray:
        """Per-node clock speeds; elementwise :meth:`clock_rate`."""
        nodes = np.asarray(nodes, dtype=np.int64)
        if self.drift == 0.0:
            return np.ones(nodes.shape)
        u = counter_uniforms(self._state(_T_DRIFT), nodes, 0)
        return 1.0 + self.drift * (2.0 * u - 1.0)

    def latencies(
        self, us: np.ndarray, vs: np.ndarray, counters: np.ndarray
    ) -> np.ndarray:
        """Delivery delays of the ``counters``-th transmissions
        ``us -> vs``; elementwise :meth:`latency_of`."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if self.jitter == 0.0:
            return np.full(us.shape, self.latency)
        draws = counter_uniforms(
            self._state(_T_LAT), _edge_keys(us, vs), counters
        )
        return self.latency + self.jitter * draws

    def link_down_mask(
        self, us: np.ndarray, vs: np.ndarray, at: float
    ) -> np.ndarray:
        """Flap mask over the undirected links ``{us, vs}`` at time
        ``at``; elementwise :meth:`link_down`."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if self.flap_rate == 0.0:
            return np.zeros(us.shape, dtype=bool)
        keys = _link_keys(us, vs)
        state = self._state(_T_FLAP)
        flapped = counter_uniforms(state, keys, 0) < self.flap_rate
        phase = counter_uniforms(state, keys, 1)
        cycle = (at / self.flap_period + phase) % 1.0
        return flapped & (cycle < self.flap_down)

    def drop_mask(
        self,
        us: np.ndarray,
        vs: np.ndarray,
        counters: np.ndarray,
        at: float,
    ) -> np.ndarray:
        """Loss mask for the ``counters``-th transmissions ``us -> vs``
        all sent at time ``at``; elementwise :meth:`dropped`."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        counters = np.asarray(counters, dtype=np.int64)
        lost = self.link_down_mask(us, vs, at)
        if self.burst_rate > 0.0:
            window = int(at // self.burst_window)
            state = self._state(_T_BURST)
            bursting = (
                counter_uniforms(state, _link_keys(us, vs), window)
                < self.burst_rate
            )
            keys = _edge_keys(us, vs)
            lost |= bursting & (
                counter_uniforms(state, keys, counters) < self.burst_drop
            )
        if self.drop_rate > 0.0:
            lost |= (
                counter_uniforms(
                    self._state(_T_DROP), _edge_keys(us, vs), counters
                )
                < self.drop_rate
            )
        return lost

    # ------------------------------------------------------------------
    def describe(self) -> dict[str, Any]:
        """Flat dict of the fault axes (for experiment rows/reports)."""
        return {
            "seed": self.seed,
            "drop_rate": self.drop_rate,
            "burst_rate": self.burst_rate,
            "crash_rate": self.crash_rate,
            "flap_rate": self.flap_rate,
            "latency": self.latency,
            "jitter": self.jitter,
            "drift": self.drift,
            "recover_after": self.recover_after,
        }
