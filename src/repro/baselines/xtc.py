"""XTC topology control (Wattenhofer & Zollinger, WMAN 2004 -- ref [19]).

XTC is the "practical" end of the comparison spectrum: each node ranks its
neighbors by link quality (distance here) and drops a neighbor ``v`` iff
some better-ranked neighbor ``z`` is also ranked better than ``u`` by
``v`` -- i.e. traffic can route via ``z``.  The result (on UDGs) is
connected, planar, of degree at most 6, and a subgraph of the RNG, but it
is **not** a constant-stretch spanner -- the paper's algorithm dominates
it on stretch and weight while XTC wins on simplicity (2 message rounds).
"""

from __future__ import annotations

from ..graphs.graph import Graph

__all__ = ["xtc_graph"]


def xtc_graph(base: Graph) -> Graph:
    """XTC topology of ``base`` using edge weight as link order.

    Ties are broken by node id, giving every node a strict total order
    over its neighbors (the protocol's requirement).
    """
    rank: dict[int, dict[int, tuple[float, int]]] = {}
    for u in base.vertices():
        rank[u] = {v: (w, v) for v, w in base.neighbor_items(u)}

    out = Graph(base.num_vertices)
    for u in base.vertices():
        for v, w in base.neighbor_items(u):
            if u > v:
                continue  # decide each edge once; the test is symmetric
            drop = False
            for z, z_order in rank[u].items():
                if z == v:
                    continue
                # z better than v for u, and z better than u for v?
                if z_order < rank[u][v] and z in rank[v] and rank[v][z] < rank[v][u]:
                    drop = True
                    break
            if not drop:
                out.add_edge(u, v, w)
    return out
