"""Tests for topology-control baselines."""

import math

import pytest

from repro.baselines import (
    baseline_registry,
    gabriel_graph,
    relative_neighborhood_graph,
    theta_graph,
    xtc_graph,
    yao_gabriel_graph,
    yao_graph,
    yao_stretch_bound,
)
from repro.exceptions import GraphError
from repro.geometry.points import PointSet
from repro.geometry.sampling import uniform_points
from repro.graphs.analysis import measure_stretch
from repro.graphs.build import build_udg
from repro.graphs.components import connected_components


@pytest.fixture(scope="module")
def deployment():
    points = uniform_points(90, seed=55)
    return points, build_udg(points)


class TestYao:
    def test_out_degree_bounded_per_cone(self, deployment):
        points, graph = deployment
        k = 8
        yao = yao_graph(graph, points, k)
        # Total degree can exceed k (in-edges), but the construction
        # keeps at most one out-edge per cone per node: edges <= n*k.
        assert yao.num_edges <= graph.num_vertices * k

    def test_preserves_connectivity(self, deployment):
        points, graph = deployment
        yao = yao_graph(graph, points, 8)
        assert len(connected_components(yao)) == len(
            connected_components(graph)
        )

    def test_nearest_neighbor_always_kept(self, deployment):
        points, graph = deployment
        yao = yao_graph(graph, points, 6)
        for u in graph.vertices():
            items = list(graph.neighbor_items(u))
            if not items:
                continue
            nearest = min(items, key=lambda vw: (vw[1], vw[0]))[0]
            assert yao.has_edge(u, nearest)

    def test_subgraph_of_base(self, deployment):
        points, graph = deployment
        assert yao_graph(graph, points, 8).is_subgraph_of(graph)

    def test_rejects_3d(self):
        points = uniform_points(10, dim=3, seed=0)
        graph = build_udg(points)
        with pytest.raises(GraphError):
            yao_graph(graph, points, 8)

    def test_rejects_one_cone(self, deployment):
        points, graph = deployment
        with pytest.raises(GraphError):
            yao_graph(graph, points, 1)

    def test_stretch_bound_formula(self):
        assert yao_stretch_bound(6) == math.inf
        assert yao_stretch_bound(7) == pytest.approx(
            1.0 / (1.0 - 2.0 * math.sin(math.pi / 7))
        )
        assert yao_stretch_bound(12) < yao_stretch_bound(8)


class TestTheta:
    def test_subgraph_and_connectivity(self, deployment):
        points, graph = deployment
        theta = theta_graph(graph, points, 8)
        assert theta.is_subgraph_of(graph)
        assert len(connected_components(theta)) == len(
            connected_components(graph)
        )

    def test_differs_from_yao_in_general(self, deployment):
        points, graph = deployment
        yao = yao_graph(graph, points, 8)
        theta = theta_graph(graph, points, 8)
        # Same cardinality scale but not necessarily identical edges.
        assert abs(yao.num_edges - theta.num_edges) <= graph.num_vertices


class TestGabriel:
    def test_known_square(self):
        """Unit square: diagonals are blocked (midpoint disk contains
        the other corners), sides survive."""
        points = PointSet([[0, 0], [1, 0], [1, 1], [0, 1]])
        g = build_udg(points.scaled(0.9))
        gg = gabriel_graph(g, points.scaled(0.9))
        assert gg.has_edge(0, 1) and gg.has_edge(1, 2)
        assert not gg.has_edge(0, 2) and not gg.has_edge(1, 3)

    def test_empty_disk_characterization(self, deployment):
        points, graph = deployment
        gg = gabriel_graph(graph, points)
        for u, v, w in gg.edges():
            mid = (points[u] + points[v]) / 2.0
            for z in graph.vertices():
                if z in (u, v):
                    continue
                d = float(((points[z] - mid) ** 2).sum()) ** 0.5
                assert d >= w / 2.0 - 1e-9

    def test_connectivity_preserved(self, deployment):
        points, graph = deployment
        gg = gabriel_graph(graph, points)
        assert len(connected_components(gg)) == len(
            connected_components(graph)
        )


class TestRng:
    def test_rng_subgraph_of_gabriel(self, deployment):
        """Classic inclusion: RNG is a subgraph of GG."""
        points, graph = deployment
        rng = relative_neighborhood_graph(graph, points)
        gg = gabriel_graph(graph, points)
        assert rng.is_subgraph_of(gg)

    def test_lune_characterization(self, deployment):
        points, graph = deployment
        rng = relative_neighborhood_graph(graph, points)
        for u, v, w in rng.edges():
            for z in graph.neighbors(u):
                if z == v:
                    continue
                assert not (
                    points.distance(u, z) < w - 1e-12
                    and points.distance(v, z) < w - 1e-12
                )

    def test_connectivity_preserved(self, deployment):
        points, graph = deployment
        rng = relative_neighborhood_graph(graph, points)
        assert len(connected_components(rng)) == len(
            connected_components(graph)
        )


class TestXtc:
    def test_subgraph_of_rng(self, deployment):
        """Wattenhofer-Zollinger: XTC output (with distance order) is a
        subgraph of the RNG."""
        points, graph = deployment
        xtc = xtc_graph(graph)
        rng = relative_neighborhood_graph(graph, points)
        assert xtc.is_subgraph_of(rng)

    def test_degree_at_most_six(self, deployment):
        """On UDGs with generic positions XTC degree is at most 6."""
        _, graph = deployment
        assert xtc_graph(graph).max_degree() <= 6

    def test_connectivity_preserved(self, deployment):
        _, graph = deployment
        assert len(connected_components(xtc_graph(graph))) == len(
            connected_components(graph)
        )


class TestYaoGG:
    def test_planar_base(self, deployment):
        points, graph = deployment
        ygg = yao_gabriel_graph(graph, points, 9)
        gg = gabriel_graph(graph, points)
        assert ygg.is_subgraph_of(gg)

    def test_connectivity_preserved(self, deployment):
        points, graph = deployment
        ygg = yao_gabriel_graph(graph, points, 9)
        assert len(connected_components(ygg)) == len(
            connected_components(graph)
        )


class TestRegistry:
    def test_all_entries_runnable_and_spanning(self, deployment):
        points, graph = deployment
        for name, fn in baseline_registry().items():
            topo = fn(graph, points)
            assert topo.num_vertices == graph.num_vertices, name
            report = measure_stretch(graph, topo)
            assert report.max_stretch < math.inf, name

    def test_input_entry_is_copy(self, deployment):
        points, graph = deployment
        topo = baseline_registry()["UDG (input)"](graph, points)
        assert topo == graph and topo is not graph
