"""Small shared numpy idioms used across the batch pipelines.

These are the vectorized building blocks that would otherwise be
copy-pasted between the grid index, the builders and the baselines.
"""

from __future__ import annotations

import numpy as np

__all__ = ["run_expand", "offset_cube"]


def run_expand(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate the integer ranges ``[starts[i], starts[i] + counts[i])``.

    Standard repeat/arange trick: expands variable-length runs without a
    Python loop.  Returns an empty int64 array when every count is zero.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate(
        [np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1]]
    )
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts)
    return np.repeat(starts, counts) + within


def offset_cube(dim: int, reach: int) -> np.ndarray:
    """All integer offsets in ``[-reach, reach]^dim`` as a ``(k, dim)``
    int64 array (row-major enumeration, includes the zero offset)."""
    side = np.arange(-reach, reach + 1, dtype=np.int64)
    grids = np.meshgrid(*([side] * dim), indexing="ij")
    return np.stack([g.ravel() for g in grids], axis=1)
