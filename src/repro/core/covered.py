"""Covered-edge filtering via the Czumaj--Zhao lemma (Section 2.2.2).

An edge ``{u, v}`` of bin ``E_i`` is *covered* when some witness ``z``
satisfies (or the symmetric condition with ``u`` and ``v`` swapped):

* ``{u, z}`` is already a spanner edge (so ``|uz| <= |uv|`` is also
  required -- Lemma 3's precondition; for edges added in phases
  ``1..i-1`` it is automatic since their length is at most ``W_{i-1}``,
  but phase-0 clique edges can be longer, so we check explicitly);
* ``|vz| <= alpha`` (so ``{v, z}`` is guaranteed to be a network edge);
* ``angle(v, u, z) <= theta`` where ``theta`` satisfies
  ``0 < theta < pi/4`` and ``t >= 1/(cos(theta) - sin(theta))``.

Lemma 3 then promises that ``{u, z}`` followed by a t-spanner path from
``z`` to ``v`` is a t-spanner path from ``u`` to ``v``, so covered edges
never need to be queried.  The angle is computed purely from pairwise
distances (law of cosines) -- the algorithm never touches coordinates,
honouring Section 1.1.

Distances come from a :class:`repro.core.oracle.DistanceOracle`; any
oracle exposing a vectorized ``pairs`` method (PointSets, l_p metrics,
energy costs, fault-masked oracles ...) rides the flattened CSR witness
scan of :func:`split_covered`, while bare scalar callables keep the
per-edge reference :func:`split_covered_reference`.
"""

from __future__ import annotations

import numpy as np

from ..arrayops import run_expand
from ..exceptions import GraphError
from ..geometry.angles import angle_from_sides
from ..graphs.graph import Graph
from .oracle import DistanceOracle, as_oracle, has_batch_pairs

__all__ = [
    "DistanceOracle",
    "is_covered",
    "split_covered",
    "split_covered_reference",
]


def _has_witness(
    u: int,
    v: int,
    length: float,
    spanner: Graph,
    dist: DistanceOracle,
    alpha: float,
    theta: float,
) -> bool:
    """Witness search for the (u -> v) orientation of the covered test."""
    for z, _ in spanner.neighbor_items(u):
        if z == v:
            continue
        uz = dist(u, z)
        if uz > length or uz <= 0.0:
            continue  # Lemma 3 needs |uz| <= |uv|
        vz = dist(v, z)
        if vz > alpha:
            continue  # {v, z} must be a guaranteed network edge
        if angle_from_sides(vz, length, uz) <= theta:
            return True
    return False


def is_covered(
    u: int,
    v: int,
    length: float,
    spanner: Graph,
    dist: DistanceOracle,
    *,
    alpha: float,
    theta: float,
) -> bool:
    """Whether edge ``{u, v}`` (of Euclidean length ``length``) is covered.

    Parameters
    ----------
    u, v:
        Edge endpoints.
    length:
        Euclidean length ``|uv|``; must be positive.
    spanner:
        The partial spanner ``G'_{i-1}`` whose edges act as witnesses.
    dist:
        Distance oracle over vertex ids (scalar calls only).
    alpha:
        Quasi-UBG parameter (witness leg must satisfy ``|vz| <= alpha``).
    theta:
        Cone half-angle; caller is responsible for Lemma 3's constraint
        (use :class:`repro.params.SpannerParams`).
    """
    if length <= 0.0:
        raise GraphError(f"edge length must be positive, got {length}")
    return _has_witness(u, v, length, spanner, dist, alpha, theta) or _has_witness(
        v, u, length, spanner, dist, alpha, theta
    )


def split_covered_reference(
    edges: list[tuple[int, int, float]],
    spanner: Graph,
    dist: DistanceOracle,
    *,
    alpha: float,
    theta: float,
) -> tuple[list[tuple[int, int, float]], list[tuple[int, int, float]]]:
    """Scalar reference partition: one :func:`is_covered` call per edge.

    The semantic anchor the flattened witness scan of
    :func:`split_covered` is pinned against, and the path taken for
    oracles without a vectorized ``pairs`` method.
    """
    candidates: list[tuple[int, int, float]] = []
    covered: list[tuple[int, int, float]] = []
    for u, v, w in edges:
        if is_covered(u, v, w, spanner, dist, alpha=alpha, theta=theta):
            covered.append((u, v, w))
        else:
            candidates.append((u, v, w))
    return candidates, covered


def split_covered(
    edges: list[tuple[int, int, float]],
    spanner: Graph,
    dist: DistanceOracle,
    *,
    alpha: float,
    theta: float,
    kernel: str = "auto",
) -> tuple[list[tuple[int, int, float]], list[tuple[int, int, float]]]:
    """Partition bin edges into (candidates, covered).

    Candidates are the edges that survive the covered-edge filter and
    move on to per-cluster-pair query selection.  With any oracle whose
    ``pairs`` method is vectorized (see
    :func:`repro.core.oracle.has_batch_pairs`) the witness scan runs as
    one flattened array pass -- witnesses expanded through the spanner's
    CSR rows, both orientations at once, distances measured by one
    ``pairs`` call per orientation; bare scalar callables use the
    per-edge reference :func:`split_covered_reference`.

    ``kernel`` selects the path explicitly (``"auto"`` picks by oracle
    capability, ``"scalar"`` forces the reference, ``"batch"`` forces
    the array pass -- valid for any oracle, since the adapter's
    ``pairs`` evaluates the scalar callable per pair).  Both kernels
    produce identical partitions for any oracle; the equivalence suite
    pins this for every shipped oracle.
    """
    if kernel not in ("auto", "scalar", "batch"):
        raise GraphError(f"kernel must be auto|scalar|batch, got {kernel!r}")
    if not edges:
        return [], []
    oracle = as_oracle(dist)
    if kernel == "scalar" or (kernel == "auto" and not has_batch_pairs(oracle)):
        return split_covered_reference(
            edges, spanner, oracle, alpha=alpha, theta=theta
        )

    ws = np.asarray([w for _, _, w in edges], dtype=np.float64)
    bad = ws <= 0.0
    if bad.any():
        w = float(ws[int(np.argmax(bad))])
        raise GraphError(f"edge length must be positive, got {w}")
    m = len(edges)
    is_cov = np.zeros(m, dtype=bool)
    if spanner.num_edges > 0:
        us = np.asarray([u for u, _, _ in edges], dtype=np.int64)
        vs = np.asarray([v for _, v, _ in edges], dtype=np.int64)
        mat = spanner.csr()
        indptr = np.asarray(mat.indptr, dtype=np.int64)
        indices = np.asarray(mat.indices, dtype=np.int64)
        for a, b in ((us, vs), (vs, us)):
            deg = indptr[a + 1] - indptr[a]
            edge_of = np.repeat(np.arange(m, dtype=np.int64), deg)
            z = indices[run_expand(indptr[a], deg)]
            w_rep = ws[edge_of]
            ok = z != b[edge_of]
            az = oracle.pairs(a[edge_of], z)
            ok &= (az <= w_rep) & (az > 0.0)  # Lemma 3: |uz| <= |uv|
            bz = oracle.pairs(b[edge_of], z)
            ok &= bz <= alpha  # {v, z} must be a network edge
            # angle(v, u, z) <= theta via the law of cosines (the same
            # expression angle_from_sides evaluates, vectorized).
            cos_val = np.where(ok, (w_rep * w_rep + az * az - bz * bz), 0.0)
            denom = np.where(ok, 2.0 * w_rep * az, 1.0)
            cos_val = np.clip(cos_val / denom, -1.0, 1.0)
            ok &= np.arccos(cos_val) <= theta
            is_cov |= np.bincount(edge_of[ok], minlength=m) > 0
    candidates = [e for e, c in zip(edges, is_cov.tolist()) if not c]
    covered = [e for e, c in zip(edges, is_cov.tolist()) if c]
    return candidates, covered
