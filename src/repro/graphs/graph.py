"""A compact undirected weighted graph on integer vertices.

Every algorithm in this library operates on :class:`Graph`: vertices are
the integers ``0 .. n-1`` (matching :class:`repro.geometry.PointSet`
labels) and edges carry positive float weights.  The representation is a
dict-of-dicts adjacency (neighbor iteration, O(1) edge queries, cheap
dynamic insertion) *paired with an append-log edge store*: every edge
occupies one row of three aligned growable numpy arrays, so the array
snapshots (:meth:`edges_arrays`, :meth:`csr_snapshot`) refresh in
O(changed) after a mutation burst instead of O(m).

The CSR view is **two-layered** (:class:`CsrSnapshot`): a frozen *base*
matrix covering a prefix of the append log plus a small sorted directed
*tail* holding the rows appended since the base was built.  Refreshing
after a k-edge append burst costs O(k log k) tail sorting -- no O(m)
merge, no coordinate re-sort of the existing structure -- and the sparse
path kernels (:func:`repro.graphs.paths.multi_source_ball_lists` and
its consumers) relax tail edges natively, so the construction hot loop
never materializes a full matrix between appends.  Dense kernels that
need one complete scipy matrix call :meth:`CsrSnapshot.matrix` (what
:meth:`Graph.csr` returns), which merges base + tail once and caches
the result.  The tail folds into a fresh base *adaptively*: a work
accumulator charges every tail lookup and layer merge, and compaction
runs once the accumulated scan work would have paid for one rebuild --
so append-only bursts stay O(changed) at any tail size while scan-heavy
workloads fold exactly when folding is cheaper.  Deletions and weight
overwrites are tombstoned: the stale base entries are marked dead and
swept out lazily by one C-level masked take at the next snapshot
refresh (never a per-edge Python loop, never a full coordinate
re-sort), with the sweep work charged to the same fold accumulator so
sustained deletion churn escalates to a full rebuild exactly when that
becomes cheaper.  Snapshots handed out stay frozen: the
log copies itself before any in-place perturbation (copy-on-write), so
callers may hold arrays across later mutations.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from ..arrayops import run_expand
from ..exceptions import GraphError

__all__ = ["Graph", "CsrSnapshot"]

#: Initial capacity of the append-log buffers.
_LOG_MIN_CAPACITY = 16

#: Adaptive compaction: the tail folds into a fresh base once the
#: cumulative tail-scan work since the last fold (charged by
#: :meth:`CsrSnapshot.tail_neighbors` and by :meth:`CsrSnapshot.matrix`
#: merges) reaches this multiple of the log size -- i.e. once consumers
#: have spent about one O(m) base rebuild's worth of work on the tail.
#: Appends alone never fold, so append-only bursts refresh in tail-sized
#: time regardless of how large the tail grows relative to the log.
_FOLD_WORK_FACTOR = 2

#: Work charged to the fold accumulator per dead *directed* base entry
#: (each deletion or overwrite of a base-resident edge marks two).  The
#: lazy compaction sweep is one O(nnz) masked take -- far cheaper per
#: entry than the coordinate re-sort of a full fold -- so deletions are
#: billed at a flat per-tombstone rate: isolated deletes stay O(nnz)
#: sweeps, sustained deletion churn accumulates toward a full rebuild.
_DEAD_WORK_CHARGE = 16


class CsrSnapshot:
    """Two-layer CSR snapshot: frozen base matrix + sorted directed tail.

    ``base`` is a symmetric :class:`scipy.sparse.csr_matrix` covering a
    prefix of the owning graph's append log; the tail holds every edge
    appended since, as directed slot arrays sorted by ``(src, dst)``
    (both orientations, so ``tail_src``/``tail_dst``/``tail_w`` have
    ``2 * num_tail_edges`` entries).  Base and tail supports are
    disjoint -- overwrites and deletions tombstone their base entries,
    which the owning graph compacts away before handing out the next
    snapshot -- so relaxing base rows plus tail slots visits exactly
    the graph's edge multiset.

    Snapshots are immutable: the owning graph replaces (never mutates)
    its cached snapshot, so holding one across later graph mutations is
    safe.
    """

    __slots__ = ("base", "tail_src", "tail_dst", "tail_w", "_matrix", "_work")

    def __init__(
        self,
        base,
        tail_src: np.ndarray,
        tail_dst: np.ndarray,
        tail_w: np.ndarray,
        work_cell: list[int] | None = None,
    ) -> None:
        self.base = base
        self.tail_src = tail_src
        self.tail_dst = tail_dst
        self.tail_w = tail_w
        self._matrix = None
        # Shared with the owning graph: cumulative tail-scan work since
        # the last fold, driving the adaptive compaction policy.
        self._work = [0] if work_cell is None else work_cell

    @property
    def num_tail_edges(self) -> int:
        """Undirected edges living in the tail layer."""
        return self.tail_src.size // 2

    @property
    def has_tail(self) -> bool:
        """Whether any edges live outside the base matrix."""
        return self.tail_src.size > 0

    def tail_neighbors(
        self, verts: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Tail adjacency rows for ``verts``: ``(counts, dst, w)``.

        ``counts[i]`` tail neighbors of ``verts[i]``; ``dst``/``w`` are
        the concatenated neighbor/weight runs in ``verts`` order.  Two
        binary searches over the sorted tail per query vertex -- O(log
        tail) each -- which is what lets the sparse frontier kernel
        consume the snapshot without ever merging the layers.
        """
        lo = np.searchsorted(self.tail_src, verts, side="left")
        hi = np.searchsorted(self.tail_src, verts, side="right")
        counts = hi - lo
        idx = run_expand(lo, counts)
        # Charge the scan (queries + hits) to the owning graph's fold
        # accumulator: once consumers have spent about one base rebuild
        # on tail lookups, the next refresh folds (adaptive compaction).
        self._work[0] += verts.size + idx.size
        return counts, self.tail_dst[idx], self.tail_w[idx]

    def matrix(self):
        """The merged full matrix (cached; for dense/scipy kernels).

        With an empty tail this *is* the base; otherwise base + tail
        merge once per snapshot (one C-level sparse addition, the cost
        the sparse kernels avoid paying).
        """
        if self._matrix is None:
            if not self.has_tail:
                self._matrix = self.base
            else:
                from scipy.sparse import coo_matrix

                delta = coo_matrix(
                    (self.tail_w, (self.tail_src, self.tail_dst)),
                    shape=self.base.shape,
                ).tocsr()
                self._matrix = self.base + delta
                # One merge reads both layers and writes the combined
                # matrix -- charge both so the next refresh folds
                # instead of merging over and over.
                self._work[0] += 2 * (self.base.nnz + self.tail_src.size)
        return self._matrix

    @property
    def merge_pending(self) -> bool:
        """True while the full matrix would still have to be merged."""
        return self.has_tail and self._matrix is None


class Graph:
    """Undirected weighted graph on vertices ``0 .. n-1``.

    Parameters
    ----------
    num_vertices:
        Number of vertices.  The vertex set is fixed at construction;
        edges may be added and removed freely.
    """

    __slots__ = (
        "_adj",
        "_num_edges",
        "_log_u",
        "_log_v",
        "_log_w",
        "_log_len",
        "_row_of",
        "_log_shared",
        "_edges_cache",
        "_base_csr",
        "_base_rows",
        "_base_dead",
        "_snapshot",
        "_snapshot_rows",
        "_tail_work",
        "_revision",
        "_probe_cache",
        "_probe_hits",
        "_probe_misses",
    )

    def __init__(self, num_vertices: int) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._adj: list[dict[int, float]] = [{} for _ in range(num_vertices)]
        self._num_edges = 0
        # Append-log edge store: row i holds edge (_log_u[i], _log_v[i])
        # with _log_u < _log_v; _row_of maps the normalized pair to its
        # row for O(1) weight overwrites and swap-deletes.
        self._log_u = np.empty(0, dtype=np.int64)
        self._log_v = np.empty(0, dtype=np.int64)
        self._log_w = np.empty(0, dtype=np.float64)
        self._log_len = 0
        self._row_of: dict[tuple[int, int], int] = {}
        # True once edges_arrays() handed out views of the log buffers;
        # in-place perturbations must copy first (copy-on-write).
        self._log_shared = False
        self._edges_cache: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        # Two-layer CSR state: _base_csr covers log rows [0, _base_rows)
        # plus the directed entries listed in _base_dead (tombstones of
        # deleted/overwritten base edges, swept by a lazy masked take at
        # the next refresh); rows beyond _base_rows form the tail of the
        # current CsrSnapshot.  Appends only stale the snapshot (the
        # next csr_snapshot() rebuilds just the tail).
        self._base_csr = None
        self._base_rows = 0
        self._base_dead: list[int] = []
        self._snapshot: CsrSnapshot | None = None
        self._snapshot_rows = -1
        # Tail-scan work accumulated since the last fold; shared with
        # every snapshot handed out so scans on held snapshots count.
        self._tail_work: list[int] = [0]
        # Monotone edge-mutation counter plus the dense-vs-sparse
        # probe-outcome cache it keys (see repro.graphs.paths.
        # prefer_batched_sources); hit/miss counters feed build reports.
        self._revision = 0
        self._probe_cache: dict[tuple[int, bool, int], bool] = {}
        self._probe_hits = 0
        self._probe_misses = 0

    # ------------------------------------------------------------------
    # Append-log plumbing
    # ------------------------------------------------------------------
    def _log_materialize(self) -> None:
        """Copy the log buffers so previously handed-out snapshot views
        stay frozen (called before any in-place write)."""
        m = self._log_len
        self._log_u = self._log_u[:m].copy()
        self._log_v = self._log_v[:m].copy()
        self._log_w = self._log_w[:m].copy()
        self._log_shared = False

    def _log_reserve(self, extra: int) -> None:
        """Grow the log buffers to hold ``extra`` more rows (amortized
        doubling; reallocation leaves old snapshot views untouched)."""
        need = self._log_len + extra
        cap = self._log_u.shape[0]
        if need <= cap:
            return
        new_cap = max(_LOG_MIN_CAPACITY, need, 2 * cap)
        for name, dtype in (
            ("_log_u", np.int64),
            ("_log_v", np.int64),
            ("_log_w", np.float64),
        ):
            buf = np.empty(new_cap, dtype=dtype)
            buf[: self._log_len] = getattr(self, name)[: self._log_len]
            setattr(self, name, buf)
        self._log_shared = False

    def _log_append(self, a: int, b: int, w: float) -> None:
        """Append one normalized edge row (``a < b``)."""
        self._log_reserve(1)
        i = self._log_len
        self._log_u[i] = a
        self._log_v[i] = b
        self._log_w[i] = w
        self._row_of[(a, b)] = i
        self._log_len = i + 1
        self._edges_cache = None
        self._revision += 1

    def _mark_base_dead(self, a: int, b: int) -> None:
        """Tombstone both directed base entries of edge ``(a, b)``.

        The entries stay in the base structure until the next snapshot
        refresh sweeps them with one masked take
        (:meth:`_compact_base_dead`); the flat per-tombstone charge lets
        sustained deletion churn escalate to a full fold adaptively.
        """
        indptr = self._base_csr.indptr
        indices = self._base_csr.indices
        for x, y in ((a, b), (b, a)):
            lo = int(indptr[x])
            hi = int(indptr[x + 1])
            self._base_dead.append(lo + int(np.searchsorted(indices[lo:hi], y)))
        self._tail_work[0] += 2 * _DEAD_WORK_CHARGE

    def _compact_base_dead(self) -> None:
        """Sweep tombstoned entries out of the base matrix.

        One C-level masked take over ``(data, indices)`` plus a per-row
        count adjustment for ``indptr`` -- no coordinate re-sort, no
        Python loop.  Builds a *new* matrix so held snapshots stay
        frozen.
        """
        from scipy.sparse import csr_matrix

        base = self._base_csr
        dead = np.asarray(self._base_dead, dtype=np.int64)
        keep = np.ones(base.nnz, dtype=bool)
        keep[dead] = False
        row_len = np.diff(base.indptr).astype(np.int64)
        dead_rows = np.searchsorted(base.indptr, dead, side="right") - 1
        np.subtract.at(row_len, dead_rows, 1)
        indptr = np.zeros(row_len.size + 1, dtype=base.indptr.dtype)
        np.cumsum(row_len, out=indptr[1:])
        self._base_csr = csr_matrix(
            (base.data[keep], base.indices[keep], indptr), shape=base.shape
        )
        self._base_dead = []

    def _log_set_weight(self, row: int, w: float) -> None:
        """Overwrite one row's weight in place (copy-on-write).

        A base-resident row is first evicted to the tail: its base
        entries are tombstoned and the row swaps with the last
        base-covered row, so the new weight lands in the tail layer and
        the base survives untouched until the lazy sweep.
        """
        if self._log_shared:
            self._log_materialize()
        if self._base_csr is not None and row < self._base_rows:
            a = int(self._log_u[row])
            b = int(self._log_v[row])
            self._mark_base_dead(a, b)
            head = self._base_rows - 1
            if row != head:
                hu = int(self._log_u[head])
                hv = int(self._log_v[head])
                w_head = float(self._log_w[head])
                self._log_u[row] = hu
                self._log_v[row] = hv
                self._log_w[row] = w_head
                self._log_u[head] = a
                self._log_v[head] = b
                self._row_of[(hu, hv)] = row
                self._row_of[(a, b)] = head
            self._log_w[head] = w
            self._base_rows = head
        else:
            self._log_w[row] = w
        self._edges_cache = None
        self._snapshot = None
        self._revision += 1

    def _log_delete(self, a: int, b: int) -> None:
        """Swap-delete one normalized edge row (copy-on-write).

        Tail rows swap with the last log row as before.  Base-covered
        rows tombstone their base entries and close the base prefix
        with a two-swap -- last base row into the vacated slot, last
        log row into the freed base boundary -- so log rows ``[0, B)``
        keep covering exactly the live base entries.
        """
        row = self._row_of.pop((a, b))
        if self._log_shared:
            self._log_materialize()
        last = self._log_len - 1
        if self._base_csr is not None and row < self._base_rows:
            self._mark_base_dead(a, b)
            head = self._base_rows - 1
            if row != head:
                hu = int(self._log_u[head])
                hv = int(self._log_v[head])
                self._log_u[row] = hu
                self._log_v[row] = hv
                self._log_w[row] = self._log_w[head]
                self._row_of[(hu, hv)] = row
            if head != last:
                lu = int(self._log_u[last])
                lv = int(self._log_v[last])
                self._log_u[head] = lu
                self._log_v[head] = lv
                self._log_w[head] = self._log_w[last]
                self._row_of[(lu, lv)] = head
            self._base_rows = head
        elif row != last:
            lu = int(self._log_u[last])
            lv = int(self._log_v[last])
            self._log_u[row] = lu
            self._log_v[row] = lv
            self._log_w[row] = self._log_w[last]
            self._row_of[(lu, lv)] = row
        self._log_len = last
        self._edges_cache = None
        self._snapshot = None
        self._revision += 1

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of edges currently present."""
        return self._num_edges

    @property
    def revision(self) -> int:
        """Monotone count of edge mutations (appends, weight overwrites,
        deletes; bulk inserts bump once per batch).  Keys caches whose
        validity ends with any edge change, such as the dense-vs-sparse
        probe cache of :func:`repro.graphs.paths.prefer_batched_sources`."""
        return self._revision

    def probe_cache_stats(self) -> dict[str, int]:
        """Hit/miss counters of the dense-vs-sparse probe-outcome cache
        (see :func:`repro.graphs.paths.prefer_batched_sources`)."""
        return {"hits": self._probe_hits, "misses": self._probe_misses}

    def vertices(self) -> range:
        """The vertex ids ``range(n)``."""
        return range(len(self._adj))

    def _check_vertex(self, u: int) -> None:
        if not 0 <= u < len(self._adj):
            raise GraphError(
                f"vertex {u} out of range [0, {len(self._adj)})"
            )

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        self._check_vertex(u)
        self._check_vertex(v)
        return v in self._adj[u]

    def weight(self, u: int, v: int) -> float:
        """Weight of edge ``{u, v}``; raises if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        try:
            return self._adj[u][v]
        except KeyError:
            raise GraphError(f"edge ({u}, {v}) not in graph") from None

    def neighbors(self, u: int) -> Iterator[int]:
        """Iterate over the neighbors of ``u``."""
        self._check_vertex(u)
        return iter(self._adj[u])

    def neighbor_items(self, u: int) -> Iterator[tuple[int, float]]:
        """Iterate over ``(neighbor, weight)`` pairs of ``u``."""
        self._check_vertex(u)
        return iter(self._adj[u].items())

    def degree(self, u: int) -> int:
        """Number of edges incident on ``u``."""
        self._check_vertex(u)
        return len(self._adj[u])

    def edges(self) -> Iterator[tuple[int, int, float]]:
        """Iterate over edges as ``(u, v, weight)`` with ``u < v``."""
        for u, nbrs in enumerate(self._adj):
            for v, w in nbrs.items():
                if u < v:
                    yield u, v, w

    def edge_set(self) -> set[tuple[int, int]]:
        """The set of edges as ``(min, max)`` vertex pairs."""
        return {(u, v) for u, v, _ in self.edges()}

    def edges_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All edges as aligned arrays ``(u, v, w)`` with ``u < v``.

        Rows appear in insertion-log order (an unspecified but
        deterministic order; deletions may reorder surviving rows).  The
        arrays are O(1) read-only views of the append-log edge store --
        refreshing after ``k`` appends costs O(k), not O(m) -- and stay
        frozen across later mutations (the store copies itself before
        any in-place write).  Callers needing scratch space must copy.
        """
        if self._edges_cache is None:
            m = self._log_len
            us = self._log_u[:m]
            vs = self._log_v[:m]
            ws = self._log_w[:m]
            for arr in (us, vs, ws):
                arr.setflags(write=False)
            self._log_shared = True
            self._edges_cache = (us, vs, ws)
        return self._edges_cache

    def adjacency_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR-style adjacency: ``(indptr, indices, weights)``.

        ``indices[indptr[u]:indptr[u+1]]`` lists the neighbors of ``u``
        (sorted ascending for determinism) with aligned ``weights``.
        Derived from the cached CSR snapshot (one array copy per call;
        the returned arrays are fresh and writable).
        """
        mat = self.csr()
        return (
            mat.indptr.astype(np.int64),
            mat.indices.astype(np.int64),
            mat.data.astype(np.float64),
        )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float) -> None:
        """Insert (or overwrite) the edge ``{u, v}`` with ``weight``.

        Self-loops and non-positive weights are rejected: the paper's
        graphs are simple with positive Euclidean-derived weights, and
        Dijkstra's correctness here relies on positivity.
        """
        self._check_vertex(u)
        self._check_vertex(v)
        if u == v:
            raise GraphError(f"self-loop at vertex {u} not allowed")
        if not weight > 0.0:
            raise GraphError(
                f"edge weight must be positive, got {weight} for ({u}, {v})"
            )
        w = float(weight)
        a, b = (u, v) if u < v else (v, u)
        row = self._row_of.get((a, b))
        if row is None:
            self._num_edges += 1
            self._log_append(a, b, w)
        else:
            self._log_set_weight(row, w)
        self._adj[u][v] = w
        self._adj[v][u] = w

    def add_vertices(self, count: int = 1) -> range:
        """Grow the vertex set by ``count`` fresh isolated vertices.

        Returns the new vertex ids ``range(n, n + count)``.  The edge
        log is untouched; a live base matrix is re-shaped in O(n) by
        padding its ``indptr`` (the new rows are empty), so incremental
        consumers -- the maintenance engine above all -- pay no rebuild
        for joins.
        """
        if count < 0:
            raise GraphError(f"count must be >= 0, got {count}")
        start = len(self._adj)
        if count == 0:
            return range(start, start)
        self._adj.extend({} for _ in range(count))
        if self._base_csr is not None:
            from scipy.sparse import csr_matrix

            base = self._base_csr
            indptr = np.concatenate(
                [
                    base.indptr,
                    np.full(count, base.indptr[-1], dtype=base.indptr.dtype),
                ]
            )
            self._base_csr = csr_matrix(
                (base.data, base.indices, indptr),
                shape=(start + count, start + count),
            )
        self._snapshot = None
        self._snapshot_rows = -1
        self._revision += 1
        return range(start, start + count)

    def remove_edge(self, u: int, v: int) -> None:
        """Delete the edge ``{u, v}``; raises if absent."""
        self._check_vertex(u)
        self._check_vertex(v)
        if v not in self._adj[u]:
            raise GraphError(f"edge ({u}, {v}) not in graph")
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._log_delete(min(u, v), max(u, v))

    def add_edges_from(
        self, edges: Iterable[tuple[int, int, float]]
    ) -> None:
        """Bulk :meth:`add_edge` from ``(u, v, weight)`` triples."""
        for u, v, w in edges:
            self.add_edge(u, v, w)

    def add_weighted_edges_arrays(
        self, u: np.ndarray, v: np.ndarray, w: np.ndarray
    ) -> None:
        """Bulk edge insertion from aligned numpy arrays.

        Validates the whole batch up front with array checks (bounds,
        self-loops, positive weights -- the same invariants
        :meth:`add_edge` enforces per edge) and then inserts with one
        tight loop, avoiding per-edge validation dispatch.  Semantics
        match repeated :meth:`add_edge` calls: later duplicates overwrite
        earlier weights.
        """
        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        w = np.asarray(w, dtype=np.float64)
        if not (u.ndim == v.ndim == w.ndim == 1):
            raise GraphError("edge arrays must be one-dimensional")
        if not (u.shape == v.shape == w.shape):
            raise GraphError(
                "edge arrays must be aligned: "
                f"got shapes {u.shape}, {v.shape}, {w.shape}"
            )
        if u.shape[0] == 0:
            return
        n = len(self._adj)
        bad = (u < 0) | (u >= n) | (v < 0) | (v >= n)
        if bad.any():
            i = int(np.flatnonzero(bad)[0])
            vertex = int(u[i]) if not 0 <= u[i] < n else int(v[i])
            raise GraphError(f"vertex {vertex} out of range [0, {n})")
        loops = u == v
        if loops.any():
            i = int(np.flatnonzero(loops)[0])
            raise GraphError(f"self-loop at vertex {int(u[i])} not allowed")
        bad_w = ~(w > 0.0)  # catches non-positive and NaN weights
        if bad_w.any():
            i = int(np.flatnonzero(bad_w)[0])
            raise GraphError(
                "edge weight must be positive, got "
                f"{float(w[i])} for ({int(u[i])}, {int(v[i])})"
            )
        adj = self._adj
        row_of = self._row_of
        k = u.shape[0]
        a_norm = np.minimum(u, v)
        b_norm = np.maximum(u, v)
        keys = list(zip(a_norm.tolist(), b_norm.tolist()))
        if len(set(keys)) == k and row_of.keys().isdisjoint(keys):
            # All-new batch (the builder hot path): append the log rows
            # as one slice write instead of per-edge calls.
            self._log_reserve(k)
            lo = self._log_len
            self._log_u[lo : lo + k] = a_norm
            self._log_v[lo : lo + k] = b_norm
            self._log_w[lo : lo + k] = w
            row_of.update(zip(keys, range(lo, lo + k)))
            self._log_len = lo + k
            for x, y, wt in zip(u.tolist(), v.tolist(), w.tolist()):
                adj[x][y] = wt
                adj[y][x] = wt
            self._num_edges += k
            self._edges_cache = None
            self._revision += 1
            return
        self._log_reserve(k)
        new_edges = 0
        for a, b, wt in zip(u.tolist(), v.tolist(), w.tolist()):
            row = adj[a]
            if b not in row:
                new_edges += 1
                self._log_append(min(a, b), max(a, b), wt)
            else:
                self._log_set_weight(row_of[(min(a, b), max(a, b))], wt)
            row[b] = wt
            adj[b][a] = wt
        self._num_edges += new_edges
        self._edges_cache = None

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """Deep copy (vertex set and all edges)."""
        out = Graph(self.num_vertices)
        for u, nbrs in enumerate(self._adj):
            out._adj[u] = dict(nbrs)
        out._num_edges = self._num_edges
        m = self._log_len
        out._log_u = self._log_u[:m].copy()
        out._log_v = self._log_v[:m].copy()
        out._log_w = self._log_w[:m].copy()
        out._log_len = m
        out._row_of = dict(self._row_of)
        return out

    def subgraph(self, nodes: Iterable[int]) -> "Graph":
        """Induced subgraph on ``nodes``, keeping original vertex ids.

        Vertices outside ``nodes`` remain in the vertex set but become
        isolated; this keeps ids stable, which the phase-local algorithms
        rely on.
        """
        keep = set(nodes)
        for u in keep:
            self._check_vertex(u)
        out = Graph(self.num_vertices)
        for u in keep:
            for v, w in self._adj[u].items():
                if v in keep and u < v:
                    out.add_edge(u, v, w)
        return out

    def spanning_union(self, other: "Graph") -> "Graph":
        """New graph with the union of this graph's and ``other``'s edges.

        Both graphs must share the vertex count.  On weight conflicts the
        *smaller* weight wins (weights here always agree in practice since
        both sides derive from the same point set).
        """
        if other.num_vertices != self.num_vertices:
            raise GraphError(
                "vertex count mismatch: "
                f"{self.num_vertices} vs {other.num_vertices}"
            )
        out = self.copy()
        for u, v, w in other.edges():
            if not out.has_edge(u, v) or out.weight(u, v) > w:
                out.add_edge(u, v, w)
        return out

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def total_weight(self) -> float:
        """Sum of all edge weights ``w(G)``."""
        return sum(w for _, _, w in self.edges())

    def max_degree(self) -> int:
        """Maximum vertex degree ``Delta(G)`` (0 for an empty graph)."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj)

    def degree_sequence(self) -> list[int]:
        """Degrees of all vertices, indexed by vertex id."""
        return [len(nbrs) for nbrs in self._adj]

    def max_edge_weight(self) -> float:
        """Largest edge weight (0.0 for an edgeless graph)."""
        return max((w for _, _, w in self.edges()), default=0.0)

    def is_subgraph_of(self, other: "Graph") -> bool:
        """Whether every edge of this graph appears in ``other``."""
        if other.num_vertices != self.num_vertices:
            return False
        return all(other.has_edge(u, v) for u, v, _ in self.edges())

    # ------------------------------------------------------------------
    # Interop
    # ------------------------------------------------------------------
    def to_networkx(self):
        """Convert to a :class:`networkx.Graph` with ``weight`` attributes."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self.vertices())
        g.add_weighted_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g) -> "Graph":
        """Build from a :class:`networkx.Graph` with integer nodes 0..n-1.

        Edge weights are read from the ``weight`` attribute (default 1.0).
        """
        nodes = sorted(g.nodes())
        if nodes and (nodes[0] != 0 or nodes[-1] != len(nodes) - 1):
            raise GraphError(
                "networkx graph must be labelled with integers 0..n-1"
            )
        out = cls(len(nodes))
        for u, v, data in g.edges(data=True):
            out.add_edge(u, v, float(data.get("weight", 1.0)))
        return out

    def csr_snapshot(self) -> CsrSnapshot:
        """Two-layer CSR snapshot: frozen base + appended-edge tail.

        This is the interchange format the sparse path kernels consume
        natively.  Refreshing after a ``k``-edge append burst builds
        only the tail (one O(k log k) sort of the new log rows) --
        independent of the total edge count ``m``, and appends alone
        *never* trigger a fold.  The tail folds into a rebuilt base
        (one C-level O(m) pass) adaptively: once the cumulative
        tail-scan work consumers have paid since the last fold
        (:meth:`CsrSnapshot.tail_neighbors` lookups plus any
        :meth:`CsrSnapshot.matrix` merges) reaches about one rebuild
        (``_FOLD_WORK_FACTOR * m``), the next refresh compacts --
        folding exactly when it has become the cheaper alternative.
        Deletions and weight overwrites tombstone their base entries;
        the refresh sweeps pending tombstones with one masked take
        (O(nnz), no re-sort) before handing out the snapshot, with the
        sweep billed to the same accumulator.
        Snapshots are immutable and cached until the next mutation.
        """
        m = self._log_len
        if self._snapshot is not None and self._snapshot_rows == m:
            return self._snapshot
        from scipy.sparse import coo_matrix

        n = self.num_vertices
        base_ok = self._base_csr is not None and self._base_rows <= m
        tail_rows = m - self._base_rows if base_ok else m
        scans_exceed_rebuild = (
            self._tail_work[0] >= _FOLD_WORK_FACTOR * m
        )
        dirty = tail_rows > 0 or bool(self._base_dead)
        if not base_ok or (dirty and scans_exceed_rebuild):
            # Compaction: fold everything into a fresh base.
            us, vs, ws = self.edges_arrays()
            self._base_csr = coo_matrix(
                (
                    np.concatenate([ws, ws]),
                    (np.concatenate([us, vs]), np.concatenate([vs, us])),
                ),
                shape=(n, n),
            ).tocsr()
            self._base_rows = m
            self._base_dead = []
            tail_rows = 0
            self._tail_work[0] = 0
        elif self._base_dead:
            self._compact_base_dead()
        if tail_rows == 0:
            empty_i = np.empty(0, dtype=np.int64)
            snapshot = CsrSnapshot(
                self._base_csr, empty_i, empty_i,
                np.empty(0, dtype=np.float64),
                work_cell=self._tail_work,
            )
        else:
            lo = self._base_rows
            du = self._log_u[lo:m]
            dv = self._log_v[lo:m]
            dw = self._log_w[lo:m]
            t_src = np.concatenate([du, dv])
            t_dst = np.concatenate([dv, du])
            t_w = np.concatenate([dw, dw])
            order = np.lexsort((t_dst, t_src))
            snapshot = CsrSnapshot(
                self._base_csr, t_src[order], t_dst[order], t_w[order],
                work_cell=self._tail_work,
            )
        self._snapshot = snapshot
        self._snapshot_rows = m
        return snapshot

    def csr_merge_pending(self) -> bool:
        """Whether ``csr()`` would have to merge a pending tail right now.

        Cheap capacity probe for kernel-selection heuristics: ``True``
        means the full matrix is stale (appends since the last merge),
        so a dense kernel would first pay the O(m) base + tail merge
        that the sparse, snapshot-native kernels skip.
        """
        if self._base_dead:
            # Pending tombstones: the next snapshot sweeps the base.
            return True
        if self._snapshot is not None and self._snapshot_rows == self._log_len:
            return self._snapshot.merge_pending
        base_ok = self._base_csr is not None and self._base_rows <= self._log_len
        return not base_ok or self._base_rows < self._log_len

    def csr(self):
        """Symmetric :class:`scipy.sparse.csr_matrix` snapshot of the graph.

        The merged full-matrix view of :meth:`csr_snapshot` -- what the
        dense analysis, path, MST and component kernels consume.  Cached
        per snapshot: after an append burst the first call pays one
        C-level base + tail merge, later calls are free; sparse kernels
        that consume the two-layer snapshot natively never trigger the
        merge at all.  Treat the result as read-only (every kernel
        does); it is never mutated in place, so held references stay
        valid across graph mutations.
        """
        return self.csr_snapshot().matrix()

    def to_scipy_csr(self):
        """Alias of :meth:`csr` (kept for API compatibility)."""
        return self.csr()

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices}, m={self.num_edges})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return (
            self.num_vertices == other.num_vertices
            and self._adj == other._adj
        )

    def __hash__(self) -> int:  # Graphs are mutable; identity hash.
        return id(self)
