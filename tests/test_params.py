"""Tests for repro.params: derivation, validation, derived quantities."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.params import SpannerParams, binning_rate_bound, max_cone_angle


class TestFromEpsilon:
    def test_t_is_one_plus_epsilon(self):
        assert SpannerParams.from_epsilon(0.5).t == pytest.approx(1.5)

    def test_t1_strictly_between_one_and_t(self):
        p = SpannerParams.from_epsilon(0.3)
        assert 1.0 < p.t1 < p.t

    def test_epsilon_property_roundtrips(self):
        assert SpannerParams.from_epsilon(0.7).epsilon == pytest.approx(0.7)

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ParameterError):
            SpannerParams.from_epsilon(0.0)
        with pytest.raises(ParameterError):
            SpannerParams.from_epsilon(-1.0)

    def test_rejects_bad_t1_fraction(self):
        with pytest.raises(ParameterError):
            SpannerParams.from_epsilon(0.5, t1_fraction=0.0)
        with pytest.raises(ParameterError):
            SpannerParams.from_epsilon(0.5, t1_fraction=1.0)

    def test_alpha_carried_through(self):
        assert SpannerParams.from_epsilon(0.5, alpha=0.6).alpha == 0.6

    def test_dim_carried_through(self):
        assert SpannerParams.from_epsilon(0.5, dim=3).dim == 3

    def test_rejects_alpha_out_of_range(self):
        with pytest.raises(ParameterError):
            SpannerParams.from_epsilon(0.5, alpha=0.0)
        with pytest.raises(ParameterError):
            SpannerParams.from_epsilon(0.5, alpha=1.5)

    def test_rejects_dimension_below_two(self):
        with pytest.raises(ParameterError):
            SpannerParams.from_epsilon(0.5, dim=1)

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.01, max_value=10.0))
    def test_derivation_always_valid(self, epsilon):
        """Property: from_epsilon never violates a theorem precondition."""
        p = SpannerParams.from_epsilon(epsilon)
        p.validate()  # would raise on any violation
        assert p.t_delta > 1.0
        assert 1.0 < p.r < (p.t_delta + 1.0) / 2.0

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(min_value=0.05, max_value=4.0),
        st.floats(min_value=0.2, max_value=1.0),
    )
    def test_derivation_valid_for_all_alpha(self, epsilon, alpha):
        SpannerParams.from_epsilon(epsilon, alpha=alpha).validate()


class TestValidation:
    def test_delta_above_theorem10_bound_rejected(self):
        good = SpannerParams.from_epsilon(0.5)
        with pytest.raises(ParameterError, match="Theorem 10"):
            SpannerParams(
                t=good.t, t1=good.t1,
                delta=(good.t - good.t1) / 4.0 + 0.01,
                r=good.r, theta=good.theta, beta=good.beta,
            )

    def test_delta_above_theorem13_bound_rejected(self):
        # Push t1 close to 1 so the Theorem 13 bound binds first.
        t, t1 = 1.5, 1.01
        delta_bad = (t1 - 1.0) / (6.0 + 2.0 * t1)  # not strictly below
        with pytest.raises(ParameterError, match="Theorem 13"):
            SpannerParams(
                t=t, t1=t1, delta=delta_bad, r=1.001, theta=0.05, beta=1.3
            )

    def test_r_out_of_range_rejected(self):
        good = SpannerParams.from_epsilon(0.5)
        with pytest.raises(ParameterError, match="r <"):
            SpannerParams(
                t=good.t, t1=good.t1, delta=good.delta,
                r=(good.t_delta + 1.0) / 2.0 + 0.01,
                theta=good.theta, beta=good.beta,
            )

    def test_theta_beyond_lemma3_rejected(self):
        good = SpannerParams.from_epsilon(0.5)
        with pytest.raises(ParameterError, match="Lemma 3"):
            SpannerParams(
                t=good.t, t1=good.t1, delta=good.delta, r=good.r,
                theta=max_cone_angle(good.t) + 0.01, beta=good.beta,
            )

    def test_beta_out_of_range_rejected(self):
        good = SpannerParams.from_epsilon(0.5)
        with pytest.raises(ParameterError, match="beta"):
            SpannerParams(
                t=good.t, t1=good.t1, delta=good.delta, r=good.r,
                theta=good.theta, beta=2.5,
            )


class TestMaxConeAngle:
    def test_lemma3_constraint_satisfied(self):
        for t in (1.05, 1.2, 1.5, 2.0, 5.0):
            theta = max_cone_angle(t)
            assert 0.0 < theta < math.pi / 4.0 + 1e-12
            assert t >= 1.0 / (math.cos(theta) - math.sin(theta)) - 1e-9

    def test_grows_with_t(self):
        assert max_cone_angle(2.0) > max_cone_angle(1.1)

    def test_rejects_t_at_most_one(self):
        with pytest.raises(ParameterError):
            max_cone_angle(1.0)

    def test_approaches_pi_over_4(self):
        assert max_cone_angle(1e6) == pytest.approx(math.pi / 4.0, abs=1e-3)


class TestDerivedQuantities:
    def test_w0_is_alpha_over_n(self):
        p = SpannerParams.from_epsilon(0.5, alpha=0.8)
        assert p.w0(100) == pytest.approx(0.008)

    def test_w_grows_geometrically(self):
        p = SpannerParams.from_epsilon(0.5)
        assert p.w(3, 50) == pytest.approx(p.w(2, 50) * p.r)

    def test_num_bins_covers_unit_length(self):
        p = SpannerParams.from_epsilon(0.5)
        for n in (2, 10, 100, 1000):
            assert p.w(p.num_bins(n), n) >= 1.0 - 1e-12

    def test_num_bins_is_logarithmic(self):
        p = SpannerParams.from_epsilon(0.5)
        m100, m10000 = p.num_bins(100), p.num_bins(10000)
        assert m10000 <= 2.2 * m100  # log(n^2) = 2 log n

    def test_num_bins_single_vertex(self):
        assert SpannerParams.from_epsilon(0.5).num_bins(1) == 0

    def test_cover_radius_matches_definition(self):
        p = SpannerParams.from_epsilon(0.5)
        assert p.cover_radius(3, 64) == pytest.approx(p.delta * p.w(2, 64))

    def test_cover_radius_rejects_phase_zero(self):
        with pytest.raises(ParameterError):
            SpannerParams.from_epsilon(0.5).cover_radius(0, 64)

    def test_query_hop_bound_positive_constant(self):
        p = SpannerParams.from_epsilon(0.5)
        assert p.query_hop_bound() >= 1
        # Theorem 9: ceil(2*(2*delta+1)/alpha).
        assert p.query_hop_bound() == math.ceil(
            2.0 * (2.0 * p.delta + 1.0) / p.alpha
        )

    def test_hop_bounds_scale_with_alpha(self):
        p1 = SpannerParams.from_epsilon(0.5, alpha=1.0)
        p2 = SpannerParams.from_epsilon(0.5, alpha=0.5)
        assert p2.query_hop_bound() >= p1.query_hop_bound()

    def test_with_alpha_revalidates(self):
        p = SpannerParams.from_epsilon(0.5)
        q = p.with_alpha(0.5)
        assert q.alpha == 0.5 and q.t == p.t

    def test_describe_mentions_key_values(self):
        text = SpannerParams.from_epsilon(0.5).describe()
        assert "t=1.5" in text and "alpha=" in text


class TestBinningRateBound:
    def test_bound_above_one_for_valid_inputs(self):
        p = SpannerParams.from_epsilon(0.5)
        assert binning_rate_bound(p.t1, p.delta) > 1.0

    def test_decreases_with_delta(self):
        assert binning_rate_bound(1.4, 0.01) > binning_rate_bound(1.4, 0.03)
