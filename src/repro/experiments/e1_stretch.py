"""E1 -- Theorem 10: the output is a t-spanner for every epsilon.

Sweeps epsilon over workloads and sizes, measuring the *exact* stretch of
the relaxed greedy output against the input alpha-UBG.  The claim's shape:
``measured stretch <= 1 + epsilon`` on every instance, approaching the
bound from below as epsilon shrinks.
"""

from __future__ import annotations

from ..core.relaxed_greedy import build_spanner
from ..graphs.analysis import measure_stretch
from .runner import ExperimentResult, register, stopwatch
from .workloads import make_workload

__all__ = ["run"]

_EPSILONS = (0.25, 0.5, 1.0, 2.0)


@register("E1")
def run(
    quick: bool = False,
    seed: int = 0,
    *,
    scenarios: tuple[str, ...] | None = None,
    sizes: tuple[int, ...] | None = None,
) -> ExperimentResult:
    """Execute E1.  ``quick`` shrinks sizes for bench use.

    ``scenarios``/``sizes`` override the built-in grid -- the sweep
    driver passes one (scenario, n) cell at a time.
    """
    sizes = tuple(sizes) if sizes else ((96,) if quick else (128, 256))
    workloads = tuple(scenarios) if scenarios else (
        ("uniform",)
        if quick
        else ("uniform", "clustered", "grid-holes", "ring")
    )
    result = ExperimentResult(
        experiment="E1",
        claim=(
            "Theorem 10: relaxed greedy output is a (1+eps)-spanner "
            "for every eps > 0"
        ),
    )
    for name in workloads:
        for n in sizes:
            workload = make_workload(name, n, seed=seed + n)
            for eps in _EPSILONS:
                row = {
                    "workload": name,
                    "n": n,
                    "eps": eps,
                    "t": 1.0 + eps,
                }
                with stopwatch(row):
                    build = build_spanner(
                        workload.graph, workload.points.distance, eps
                    )
                    report = measure_stretch(workload.graph, build.spanner)
                ok = report.max_stretch <= (1.0 + eps) * (1.0 + 1e-9)
                row.update(
                    stretch=report.max_stretch,
                    mean_stretch=report.mean_stretch,
                    edges=build.spanner.num_edges,
                    within_bound=ok,
                )
                result.rows.append(row)
                result.passed &= ok
    return result
