"""3-D drone-swarm topology: the d >= 2 generality of the model.

Run:  python examples/drone_swarm_3d.py

A swarm of drones occupies a 3-D volume; links fade unpredictably between
60% and 100% of nominal range (Bernoulli gray zone).  We sweep epsilon to
show the stretch/sparsity dial the paper provides -- something
fixed-stretch constructions (Yao, Gabriel, [15]) cannot do.
"""

from repro import assess
from repro.core.relaxed_greedy import build_spanner
from repro.geometry.sampling import uniform_points
from repro.graphs.build import BernoulliPolicy, build_qubg


def main() -> None:
    alpha = 0.6
    points = uniform_points(220, dim=3, seed=21, expected_degree=11.0)
    swarm = build_qubg(
        points, alpha, policy=BernoulliPolicy(0.6, seed=21)
    )
    print(f"swarm: n={swarm.num_vertices}, m={swarm.num_edges}, d=3, "
          f"alpha={alpha}")
    print(f"{'eps':>6} {'t':>6} {'edges':>6} {'stretch':>8} "
          f"{'maxdeg':>6} {'light':>6}")
    for eps in (2.0, 1.0, 0.5, 0.25):
        result = build_spanner(
            swarm, points.distance, eps, alpha=alpha, dim=3
        )
        q = assess(swarm, result.spanner)
        print(f"{eps:>6} {1 + eps:>6.2f} {q.edges:>6} {q.stretch:>8.4f} "
              f"{q.max_degree:>6} {q.lightness:>6.3f}")
        assert q.stretch <= 1 + eps + 1e-9


if __name__ == "__main__":
    main()
