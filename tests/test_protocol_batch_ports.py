"""Scalar-vs-batch RunResult equality for the ISSUE 4 protocol ports.

ConvergecastSum and TreeSixColoring complete the batch tier's protocol
coverage; like the PR 3 suite, equality is exact -- rounds, messages,
words, outputs and output insertion order -- across random topologies,
random BFS forests, integer and float payloads.
"""

from collections import deque

import numpy as np
import pytest

from repro.distributed.engine import SynchronousNetwork
from repro.distributed.protocols.aggregate import ConvergecastSum
from repro.distributed.protocols.coloring import (
    TreeSixColoring,
    cv_rounds_needed,
    tree_coloring_to_mis,
)
from repro.exceptions import ProtocolError
from repro.graphs.graph import Graph


def random_graph(n: int, m: int, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    g = Graph(n)
    for _ in range(m):
        a, b = int(rng.integers(n)), int(rng.integers(n))
        if a != b:
            g.add_edge(a, b, float(rng.uniform(0.1, 1.0)))
    return g


def bfs_forest(g: Graph) -> dict[int, int]:
    parents: dict[int, int] = {}
    seen: set[int] = set()
    for root in g.vertices():
        if root in seen:
            continue
        seen.add(root)
        parents[root] = root
        queue = deque([root])
        while queue:
            u = queue.popleft()
            for v in g.neighbors(u):
                if v not in seen:
                    seen.add(v)
                    parents[v] = u
                    queue.append(v)
    return parents


def assert_equal_runs(net: SynchronousNetwork, protocol) -> None:
    scalar = net.run(protocol, engine="scalar")
    batch = net.run(protocol, engine="batch")
    assert scalar.rounds == batch.rounds
    assert scalar.messages == batch.messages
    assert scalar.words == batch.words
    assert scalar.outputs == batch.outputs
    assert list(scalar.outputs) == list(batch.outputs)


class TestConvergecastBatch:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_forests_int_values(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 50))
        g = random_graph(n, 3 * n, seed)
        net = SynchronousNetwork(g, max_rounds=400)
        parents = bfs_forest(g)
        values = {u: int(rng.integers(-100, 100)) for u in range(n)}
        proto = ConvergecastSum(parents, values)
        assert proto.supports_batch
        assert_equal_runs(net, proto)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_forests_float_values_bit_exact(self, seed):
        rng = np.random.default_rng(100 + seed)
        n = int(rng.integers(4, 40))
        g = random_graph(n, 2 * n, seed)
        net = SynchronousNetwork(g, max_rounds=400)
        parents = bfs_forest(g)
        values = {u: float(rng.uniform(-1, 1)) for u in range(n)}
        proto = ConvergecastSum(parents, values)
        scalar = net.run(proto, engine="scalar")
        batch = net.run(proto, engine="batch")
        assert scalar.outputs.keys() == batch.outputs.keys()
        for u, value in scalar.outputs.items():
            if isinstance(value, float):
                # Float fold order matches exactly, so sums are bitwise
                # identical, not merely close.
                assert value.hex() == batch.outputs[u].hex()
            else:
                assert batch.outputs[u] == value
        assert (scalar.rounds, scalar.messages, scalar.words) == (
            batch.rounds, batch.messages, batch.words,
        )

    def test_huge_int_sums_stay_scalar(self):
        # float64 cannot hold the aggregate exactly, so the batch tier
        # must decline and auto dispatch must produce the exact sum.
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        big = 2**53 - 1
        proto = ConvergecastSum({0: 0, 1: 0, 2: 0}, {u: big for u in range(3)})
        assert not proto.supports_batch
        run = SynchronousNetwork(g).run(proto)
        assert run.outputs[0] == 3 * big

    def test_bool_values_keep_integer_output_on_batch_tier(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 2, 1.0)
        proto = ConvergecastSum({0: 0, 1: 0, 2: 0}, {u: True for u in range(3)})
        assert proto.supports_batch
        net = SynchronousNetwork(g)
        batch = net.run(proto, engine="batch")
        assert batch.outputs[0] == 3 and isinstance(batch.outputs[0], int)
        assert batch.outputs == net.run(proto, engine="scalar").outputs

    def test_custom_combiner_stays_scalar(self):
        g = random_graph(8, 16, 0)
        proto = ConvergecastSum(
            bfs_forest(g), {u: u for u in range(8)}, combine=max
        )
        assert not proto.supports_batch
        with pytest.raises(ProtocolError):
            SynchronousNetwork(g).run(proto, engine="batch")
        SynchronousNetwork(g).run(proto)  # auto falls back to scalar

    def test_bad_parent_raises_same_error_both_tiers(self):
        g = Graph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        parents = {0: 0, 1: 0, 2: 0, 3: 2}  # 2's parent is not a neighbor
        messages = []
        for engine in ("scalar", "batch"):
            proto = ConvergecastSum(parents, {u: 1 for u in range(4)})
            with pytest.raises(ProtocolError) as err:
                SynchronousNetwork(g).run(proto, engine=engine)
            messages.append(str(err.value))
        assert messages[0] == messages[1]


class TestColoringBatch:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_forests(self, seed):
        rng = np.random.default_rng(200 + seed)
        n = int(rng.integers(3, 60))
        g = random_graph(n, 3 * n, seed)
        net = SynchronousNetwork(g, max_rounds=400)
        proto = TreeSixColoring(bfs_forest(g), cv_rounds_needed(n))
        assert_equal_runs(net, proto)

    def test_zero_rounds(self):
        g = random_graph(10, 20, 1)
        assert_equal_runs(
            SynchronousNetwork(g), TreeSixColoring(bfs_forest(g), 0)
        )

    def test_batch_coloring_is_proper_and_yields_mis(self):
        g = random_graph(40, 120, 5)
        parents = bfs_forest(g)
        net = SynchronousNetwork(g, max_rounds=400)
        run = net.run(
            TreeSixColoring(parents, cv_rounds_needed(40)), engine="batch"
        )
        colors = run.outputs
        for u, p in parents.items():
            if p != u:
                assert colors[u] != colors[p]
        assert all(0 <= c <= 5 for c in colors.values())
        tree_adj: dict[int, set[int]] = {u: set() for u in g.vertices()}
        for u, p in parents.items():
            if p != u:
                tree_adj[u].add(p)
                tree_adj[p].add(u)
        mis = tree_coloring_to_mis(tree_adj, colors)
        for u in mis:
            assert not tree_adj[u] & mis

    def test_bad_parent_raises_same_error_both_tiers(self):
        g = Graph(3)
        g.add_edge(0, 1, 1.0)
        parents = {0: 0, 1: 0, 2: 0}  # 2 is isolated; 0 not its neighbor
        messages = []
        for engine in ("scalar", "batch"):
            with pytest.raises(ProtocolError) as err:
                SynchronousNetwork(g).run(
                    TreeSixColoring(parents, 3), engine=engine
                )
            messages.append(str(err.value))
        assert messages[0] == messages[1]
