"""Tests for the doubling-metric extension (paper Section 4 future work)."""

import math

import pytest

from repro.extensions.doubling_metric import (
    build_metric_spanner,
    build_metric_ubg,
    lp_metric,
)
from repro.exceptions import GraphError
from repro.geometry.sampling import uniform_points
from repro.graphs.analysis import measure_stretch


@pytest.fixture(scope="module")
def coords():
    return uniform_points(60, seed=91, expected_degree=8.0).coords


class TestLpMetric:
    def test_l1(self, coords):
        dist = lp_metric(coords, 1.0)
        expected = abs(coords[0] - coords[1]).sum()
        assert dist(0, 1) == pytest.approx(float(expected))

    def test_linf(self, coords):
        dist = lp_metric(coords, float("inf"))
        expected = abs(coords[0] - coords[1]).max()
        assert dist(0, 1) == pytest.approx(float(expected))

    def test_l2_matches_euclidean(self, coords):
        import numpy as np

        dist = lp_metric(coords, 2.0)
        expected = float(np.linalg.norm(coords[0] - coords[1]))
        assert dist(0, 1) == pytest.approx(expected)

    def test_metric_axioms(self, coords):
        for p in (1.0, 2.0, float("inf")):
            dist = lp_metric(coords, p)
            for u, v, w in ((0, 1, 2), (3, 4, 5)):
                assert dist(u, u) == 0.0
                assert dist(u, v) == pytest.approx(dist(v, u))
                assert dist(u, w) <= dist(u, v) + dist(v, w) + 1e-9

    def test_rejects_bad_p(self, coords):
        with pytest.raises(GraphError):
            lp_metric(coords, 0.5)

    def test_rejects_1d_coords(self):
        with pytest.raises(GraphError):
            lp_metric([1.0, 2.0], 1.0)


class TestBuildMetricUbg:
    def test_threshold_semantics(self, coords):
        dist = lp_metric(coords, 1.0)
        graph = build_metric_ubg(len(coords), dist)
        for u in range(len(coords)):
            for v in range(u + 1, len(coords)):
                assert graph.has_edge(u, v) == (dist(u, v) <= 1.0)

    def test_gray_zone_policy(self, coords):
        dist = lp_metric(coords, 1.0)
        drop = build_metric_ubg(
            len(coords), dist, alpha=0.5,
            decide_gray=lambda u, v, d: False,
        )
        keep = build_metric_ubg(len(coords), dist, alpha=0.5)
        assert drop.num_edges <= keep.num_edges
        for u, v, w in drop.edges():
            assert w <= 0.5

    def test_rejects_bad_alpha(self, coords):
        with pytest.raises(GraphError):
            build_metric_ubg(3, lp_metric(coords, 1.0), alpha=0.0)

    def test_rejects_coincident_points(self):
        coords = [[0.0, 0.0], [0.0, 0.0]]
        with pytest.raises(GraphError):
            build_metric_ubg(2, lp_metric(coords, 1.0))


class TestBuildMetricSpanner:
    @pytest.mark.parametrize("p", [1.0, float("inf")])
    def test_stretch_certified_for_any_metric(self, coords, p):
        dist = lp_metric(coords, p)
        graph = build_metric_ubg(len(coords), dist)
        result = build_metric_spanner(graph, dist, 0.5)
        stretch = measure_stretch(graph, result.spanner).max_stretch
        assert stretch <= 1.5 * (1.0 + 1e-9)

    def test_degree_band_on_doubling_metric(self, coords):
        dist = lp_metric(coords, 1.0)
        graph = build_metric_ubg(len(coords), dist)
        result = build_metric_spanner(graph, dist, 0.5)
        assert result.spanner.max_degree() <= 14

    def test_sparser_than_input(self, coords):
        dist = lp_metric(coords, float("inf"))
        graph = build_metric_ubg(len(coords), dist)
        result = build_metric_spanner(graph, dist, 1.0)
        assert result.spanner.num_edges <= graph.num_edges


class TestAblationFlags:
    """The core builder's switches behave as documented."""

    def test_filter_off_still_spanner(self, medium_udg, medium_points, params_half):
        from repro.core.relaxed_greedy import RelaxedGreedySpanner

        builder = RelaxedGreedySpanner(params_half, use_covered_filter=False)
        result = builder.build(medium_udg, medium_points.distance)
        stretch = measure_stretch(medium_udg, result.spanner).max_stretch
        assert stretch <= params_half.t * (1 + 1e-9)

    def test_filter_off_reports_no_covered(self, small_udg, small_points, params_half):
        from repro.core.relaxed_greedy import RelaxedGreedySpanner

        builder = RelaxedGreedySpanner(params_half, use_covered_filter=False)
        result = builder.build(small_udg, small_points.distance)
        assert all(p.num_covered == 0 for p in result.phases)

    def test_removal_off_still_spanner(self, medium_udg, medium_points, params_half):
        from repro.core.relaxed_greedy import RelaxedGreedySpanner

        builder = RelaxedGreedySpanner(
            params_half, use_redundancy_removal=False
        )
        result = builder.build(medium_udg, medium_points.distance)
        stretch = measure_stretch(medium_udg, result.spanner).max_stretch
        assert stretch <= params_half.t * (1 + 1e-9)
        assert result.total_removed == 0

    def test_removal_off_at_least_as_heavy(
        self, medium_udg, medium_points, params_half
    ):
        from repro.core.relaxed_greedy import RelaxedGreedySpanner

        on = RelaxedGreedySpanner(params_half).build(
            medium_udg, medium_points.distance
        )
        off = RelaxedGreedySpanner(
            params_half, use_redundancy_removal=False
        ).build(medium_udg, medium_points.distance)
        assert (
            off.spanner.total_weight() >= on.spanner.total_weight() - 1e-9
        )
