"""E8 -- Sections 1.4/2: query-work comparison, naive greedy vs relaxed.

``SEQ-GREEDY`` answers one shortest-path query per edge on a growing
spanner; the Das--Narasimhan machinery (binning + covers + cluster graph)
replaces most queries with covered-edge filtering and answers the rest on
the constant-hop cluster graph.  We count the dominant cost driver --
vertices settled by Dijkstra (for SEQ-GREEDY) versus queries issued (for
the relaxed algorithm) -- plus wall time.  Shape: the relaxed algorithm
issues far fewer queries per edge and its advantage widens with n.

The full sweep now extends the relaxed arm to ``n = 10^4``.  The naive
baseline is quadratic-ish and is only *measured* up to ``_NAIVE_CAP``
(beyond that its columns are left empty rather than extrapolated); the
scaling shape check for the large-n rows is that relaxed queries per
input edge stay in a flat band -- the Das--Narasimhan effect does not
deteriorate at scale.
"""

from __future__ import annotations

import time

from ..core.relaxed_greedy import build_spanner
from ..core.seq_greedy import GreedyStats, seq_greedy
from .runner import ExperimentResult, register
from .workloads import make_workload

__all__ = ["run"]

#: Largest n the quadratic SEQ-GREEDY baseline is actually executed at.
_NAIVE_CAP = 512


@register("E8")
def run(quick: bool = False, seed: int = 0) -> ExperimentResult:
    """Execute E8."""
    sizes = (64, 128) if quick else (64, 128, 256, 512, 1000, 5000, 10000)
    eps = 0.5
    result = ExperimentResult(
        experiment="E8",
        claim=(
            "Section 2: relaxed greedy answers O(#clusters) queries per "
            "phase instead of one per edge (Das-Narasimhan effect)"
        ),
        notes=(
            f"naive baseline measured up to n={_NAIVE_CAP}; larger rows "
            "track the relaxed arm's queries-per-edge band"
        ),
    )
    ratios = []
    queries_per_edge = []
    for n in sizes:
        workload = make_workload("uniform", n, seed=seed + n)
        row: dict = {"n": n, "edges": workload.graph.num_edges}
        if n <= _NAIVE_CAP:
            stats = GreedyStats()
            t0 = time.perf_counter()
            greedy = seq_greedy(workload.graph, 1.0 + eps, stats=stats)
            row["naive_queries"] = stats.num_queries
            row["naive_settled"] = stats.num_settled
            row["naive_time_s"] = time.perf_counter() - t0
            row["greedy_edges"] = greedy.num_edges
        t0 = time.perf_counter()
        build = build_spanner(workload.graph, workload.points.distance, eps)
        relaxed_time = time.perf_counter() - t0
        relaxed_queries = sum(p.num_queries for p in build.phases)
        per_edge = relaxed_queries / max(1, workload.graph.num_edges)
        queries_per_edge.append(per_edge)
        row.update(
            relaxed_queries=relaxed_queries,
            relaxed_queries_per_edge=per_edge,
            relaxed_time_s=relaxed_time,
            relaxed_edges=build.spanner.num_edges,
        )
        if "naive_queries" in row:
            ratio = relaxed_queries / max(1, row["naive_queries"])
            row["query_ratio"] = ratio
            ratios.append(ratio)
        result.rows.append(row)
    # Shape: relaxed issues fewer queries everywhere the baseline runs,
    # the saving does not deteriorate as n grows, and the queries-per-
    # edge band stays flat out to the largest (baseline-free) sizes.
    result.passed = all(r < 1.0 for r in ratios) and ratios[-1] <= ratios[0] * 1.5
    result.passed &= max(queries_per_edge) <= max(
        1.0, 2.0 * queries_per_edge[0] + 0.1
    )
    return result
