"""Named workload registry for the experiment suite.

A *workload* bundles a point process, an alpha value and a gray-zone
policy into a ready-made alpha-UBG instance.  Every experiment refers to
workloads by name so EXPERIMENTS.md rows are exactly reproducible from
``(workload, n, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import GraphError
from ..geometry.points import PointSet
from ..geometry.sampling import (
    clustered_points,
    corridor_points,
    grid_jitter_points,
    uniform_points,
)
from ..graphs.build import (
    BernoulliPolicy,
    DecayPolicy,
    GrayZonePolicy,
    build_qubg,
    build_udg,
)
from ..graphs.graph import Graph

__all__ = ["Workload", "make_workload", "WORKLOAD_NAMES"]

#: Names accepted by :func:`make_workload`.
WORKLOAD_NAMES = (
    "uniform",
    "clustered",
    "grid",
    "corridor",
    "uniform3d",
)


@dataclass(frozen=True)
class Workload:
    """A generated problem instance.

    Attributes
    ----------
    name:
        Workload name (see :data:`WORKLOAD_NAMES`).
    points:
        Node coordinates.
    graph:
        The alpha-UBG built over them.
    alpha:
        The alpha used.
    seed:
        Generation seed.
    """

    name: str
    points: PointSet
    graph: Graph
    alpha: float
    seed: int

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.points)

    @property
    def dim(self) -> int:
        """Euclidean dimension."""
        return self.points.dim


def _points_for(name: str, n: int, seed: int, degree: float) -> PointSet:
    if name == "uniform":
        return uniform_points(n, seed=seed, expected_degree=degree)
    if name == "clustered":
        return clustered_points(
            n,
            seed=seed,
            num_clusters=max(3, n // 48),
            cluster_std=0.45,
            expected_degree=degree,
        )
    if name == "grid":
        return grid_jitter_points(n, seed=seed, spacing=0.7, jitter=0.18)
    if name == "corridor":
        return corridor_points(n, seed=seed, length=max(10.0, n / 12.0))
    if name == "uniform3d":
        return uniform_points(
            n, seed=seed, dim=3, expected_degree=max(degree, 10.0)
        )
    raise GraphError(f"unknown workload {name!r}; choose from {WORKLOAD_NAMES}")


def make_workload(
    name: str,
    n: int,
    seed: int = 0,
    *,
    alpha: float = 1.0,
    policy: GrayZonePolicy | str | None = None,
    expected_degree: float = 8.0,
) -> Workload:
    """Build the named workload instance.

    Parameters
    ----------
    name:
        One of :data:`WORKLOAD_NAMES`.
    n:
        Node count.
    seed:
        Point-process seed (also seeds stochastic gray-zone policies).
    alpha:
        Quasi-UBG parameter; 1.0 yields a plain UDG.
    policy:
        Gray-zone adversary for ``alpha < 1``; accepts a policy object or
        one of the shorthand strings ``"bernoulli"`` / ``"decay"``.
    expected_degree:
        Target average degree for density-controlled point processes.
    """
    points = _points_for(name, n, seed, expected_degree)
    if alpha >= 1.0:
        graph = build_udg(points)
    else:
        if policy == "bernoulli":
            policy = BernoulliPolicy(0.5, seed=seed)
        elif policy == "decay":
            policy = DecayPolicy(alpha, seed=seed)
        graph = build_qubg(points, alpha, policy=policy)
    return Workload(name=name, points=points, graph=graph, alpha=alpha, seed=seed)
