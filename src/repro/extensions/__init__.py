"""Section 1.6 extensions: fault tolerance, energy metrics, power cost."""

from .energy import (
    EnergyCostOracle,
    EnergySpannerResult,
    build_energy_spanner,
    energy_cost_oracle,
    reweight_graph,
)
from .fault_tolerance import (
    FaultInjectionReport,
    EdgeFaultMaskedOracle,
    FaultMaskedOracle,
    fault_injection_report,
    is_k_vertex_fault_tolerant,
    multipass_fault_tolerant_spanner,
    one_fault_greedy,
)
from .power_cost import (
    PowerCostReport,
    power_assignment,
    power_cost_report,
    total_power,
)

__all__ = [
    "EdgeFaultMaskedOracle",
    "FaultMaskedOracle",
    "EnergyCostOracle",
    "energy_cost_oracle",
    "one_fault_greedy",
    "multipass_fault_tolerant_spanner",
    "FaultInjectionReport",
    "fault_injection_report",
    "is_k_vertex_fault_tolerant",
    "EnergySpannerResult",
    "build_energy_spanner",
    "reweight_graph",
    "power_assignment",
    "total_power",
    "PowerCostReport",
    "power_cost_report",
]
