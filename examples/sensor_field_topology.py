"""Sensor-field topology control with the distributed protocol.

Run:  python examples/sensor_field_topology.py

Scenario from the paper's motivation: a planned sensor field (perturbed
grid) with physical obstructions knocking out marginal radio links -- an
alpha-UBG with an obstacle adversary.  Each sensor runs the Section 3
distributed protocol; we report the topology quality *and* the
communication-round bill, then persist the instance for replay.
"""

import tempfile
from pathlib import Path

from repro import assess
from repro.distributed import DistributedRelaxedGreedy
from repro.geometry.sampling import grid_jitter_points
from repro.graphs.build import ObstaclePolicy, build_qubg
from repro.graphs.io import load_instance, save_instance
from repro.params import SpannerParams


def main() -> None:
    # A 14x14-ish sensor grid with two walls in the middle of the field.
    points = grid_jitter_points(190, spacing=0.68, jitter=0.15, seed=11)
    walls = ObstaclePolicy(
        obstacles=(
            ((4.0, 4.0), 0.35),
            ((6.5, 6.5), 0.35),
        )
    )
    alpha = 0.75
    network = build_qubg(points, alpha, policy=walls)
    print(f"sensor field: n={network.num_vertices}, m={network.num_edges} "
          f"(alpha={alpha}, 2 obstacles)")

    params = SpannerParams.from_epsilon(0.5, alpha=alpha)
    protocol = DistributedRelaxedGreedy(params, seed=3)
    result = protocol.build(network, points.distance)

    quality = assess(network, result.spanner)
    print(f"topology: {result.spanner.num_edges} links kept")
    print(f"  stretch    = {quality.stretch:.4f} (bound 1.5)")
    print(f"  max degree = {quality.max_degree}")
    print(f"  lightness  = {quality.lightness:.3f}")
    print("communication bill:")
    print(result.ledger.summary())

    # Persist for replay / post-mortem.
    out = Path(tempfile.gettempdir()) / "sensor_field_instance.json"
    save_instance(out, network, points, metadata={"alpha": alpha, "seed": 11})
    reloaded, _, meta = load_instance(out)
    assert reloaded == network
    print(f"instance saved to {out} (alpha={meta['alpha']})")


if __name__ == "__main__":
    main()
