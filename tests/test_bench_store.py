"""Tests for the run-to-run benchmark trajectory store."""

import json

import pytest

from repro.experiments.bench_store import BenchStore


class TestBenchStore:
    def test_append_creates_trajectory(self, tmp_path):
        store = BenchStore(tmp_path / "bench")
        store.append("luby", {"n": 2000, "speedup": 12.5})
        store.append("luby", {"n": 2000, "speedup": 13.0})
        runs = store.history("luby")
        assert len(runs) == 2
        assert runs[0]["speedup"] == 12.5
        assert runs[1]["speedup"] == 13.0
        assert all("recorded_at" in r for r in runs)

    def test_index_tracks_latest_run(self, tmp_path):
        store = BenchStore(tmp_path / "bench")
        store.append("a", {"x": 1})
        store.append("b", {"x": 2})
        store.append("a", {"x": 3})
        index = json.loads((tmp_path / "bench" / "index.json").read_text())
        by_name = {e["name"]: e for e in index}
        assert by_name["a"]["num_runs"] == 2
        assert by_name["a"]["latest"]["x"] == 3
        assert by_name["b"]["num_runs"] == 1

    def test_history_of_unknown_bench_is_empty(self, tmp_path):
        assert BenchStore(tmp_path / "bench").history("nope") == []

    def test_names_are_slugged_to_safe_filenames(self, tmp_path):
        store = BenchStore(tmp_path / "bench")
        path = store.append("weird name/with:chars", {"v": 1})
        assert path.name == "weird-name-with-chars.json"
        store.append("weird name/with:chars", {"v": 2})
        assert len(store.history("weird name/with:chars")) == 2
        data = json.loads(path.read_text())
        assert len(data["runs"]) == 2


class TestRegressionGate:
    def test_no_history_passes_trivially(self, tmp_path):
        store = BenchStore(tmp_path / "bench")
        ok, baseline = store.check_regression("fresh", 123.0)
        assert ok and baseline is None
        store.assert_within_trajectory("fresh", 123.0)  # no-op

    def test_median_baseline_and_threshold(self, tmp_path):
        store = BenchStore(tmp_path / "bench")
        for wall in (1.0, 2.0, 10.0):  # median 2.0 despite one slow run
            store.append("seq", {"wall_s": wall})
        ok, baseline = store.check_regression("seq", 3.9)
        assert ok and baseline == 2.0
        ok, _ = store.check_regression("seq", 4.1)
        assert not ok

    def test_assert_raises_with_context(self, tmp_path):
        store = BenchStore(tmp_path / "bench")
        store.append("seq", {"wall_s": 1.0})
        store.append("seq", {"wall_s": 1.0})
        with pytest.raises(AssertionError, match="bench regression: seq"):
            store.assert_within_trajectory("seq", 2.5)
        store.assert_within_trajectory("seq", 1.9)

    def test_non_numeric_and_missing_metrics_ignored(self, tmp_path):
        store = BenchStore(tmp_path / "bench")
        store.append("seq", {"wall_s": "broken"})
        store.append("seq", {"other": 1.0})
        ok, baseline = store.check_regression("seq", 99.0)
        assert ok and baseline is None
        store.append("seq", {"wall_s": 2.0})
        ok, baseline = store.check_regression("seq", 3.0)
        assert ok and baseline == 2.0

    def test_custom_metric_and_factor(self, tmp_path):
        store = BenchStore(tmp_path / "bench")
        store.append("luby", {"rounds": 10})
        ok, _ = store.check_regression(
            "luby", 14.0, metric="rounds", factor=1.5
        )
        assert ok
        ok, _ = store.check_regression(
            "luby", 16.0, metric="rounds", factor=1.5
        )
        assert not ok
