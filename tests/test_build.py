"""Tests for UDG / alpha-UBG builders and gray-zone policies."""

import numpy as np
import pytest

from repro.exceptions import GraphError
from repro.geometry.metrics import EnergyMetric
from repro.geometry.points import PointSet
from repro.graphs.build import (
    BernoulliPolicy,
    DecayPolicy,
    DropAllPolicy,
    KeepAllPolicy,
    ObstaclePolicy,
    build_qubg,
    build_udg,
)


@pytest.fixture()
def line_points():
    return PointSet([[0.0, 0.0], [0.4, 0.0], [1.1, 0.0], [1.5, 0.0]])


class TestBuildUdg:
    def test_edges_by_radius(self, line_points):
        g = build_udg(line_points)
        assert g.has_edge(0, 1)  # 0.4
        assert g.has_edge(1, 2)  # 0.7
        assert not g.has_edge(0, 2)  # 1.1
        assert g.has_edge(2, 3)  # 0.4

    def test_weights_are_distances(self, line_points):
        g = build_udg(line_points)
        assert g.weight(0, 1) == pytest.approx(0.4)

    def test_custom_radius(self, line_points):
        g = build_udg(line_points, radius=0.5)
        assert g.has_edge(0, 1) and not g.has_edge(1, 2)

    def test_rejects_bad_radius(self, line_points):
        with pytest.raises(GraphError):
            build_udg(line_points, radius=0.0)

    def test_energy_metric_weights(self, line_points):
        g = build_udg(line_points, metric=EnergyMetric(gamma=2.0))
        assert g.weight(0, 1) == pytest.approx(0.16)

    def test_matches_bruteforce_on_random(self):
        rng = np.random.default_rng(11)
        ps = PointSet(rng.uniform(0, 4, size=(50, 2)))
        g = build_udg(ps)
        for u in range(50):
            for v in range(u + 1, 50):
                assert g.has_edge(u, v) == (ps.distance(u, v) <= 1.0)


class TestBuildQubg:
    def test_alpha_one_equals_udg(self, line_points):
        assert build_qubg(line_points, 1.0) == build_udg(line_points)

    def test_keepall_keeps_gray_zone(self, line_points):
        g = build_qubg(line_points, 0.5, policy=KeepAllPolicy())
        assert g.has_edge(1, 2)  # 0.7 in gray zone

    def test_dropall_drops_gray_zone(self, line_points):
        g = build_qubg(line_points, 0.5, policy=DropAllPolicy())
        assert not g.has_edge(1, 2)
        assert g.has_edge(0, 1)  # 0.4 <= alpha always kept

    def test_never_connects_beyond_one(self, line_points):
        g = build_qubg(line_points, 0.5)
        assert not g.has_edge(0, 2)  # distance 1.1 > 1

    def test_rejects_bad_alpha(self, line_points):
        with pytest.raises(GraphError):
            build_qubg(line_points, 0.0)
        with pytest.raises(GraphError):
            build_qubg(line_points, 1.2)

    def test_alpha_ubg_definition_holds_for_every_policy(self):
        """Defining property: d <= alpha => edge; d > 1 => no edge."""
        rng = np.random.default_rng(2)
        ps = PointSet(rng.uniform(0, 3, size=(40, 2)))
        alpha = 0.6
        for policy in (
            KeepAllPolicy(),
            DropAllPolicy(),
            BernoulliPolicy(0.5, seed=1),
            DecayPolicy(alpha, seed=1),
        ):
            g = build_qubg(ps, alpha, policy=policy)
            for u in range(40):
                for v in range(u + 1, 40):
                    d = ps.distance(u, v)
                    if d <= alpha:
                        assert g.has_edge(u, v)
                    elif d > 1.0:
                        assert not g.has_edge(u, v)


class TestPolicies:
    def test_bernoulli_deterministic(self):
        ps = PointSet([[0.0, 0.0], [0.8, 0.0]])
        p = BernoulliPolicy(0.5, seed=3)
        assert p.decide(ps, 0, 1, 0.8) == p.decide(ps, 1, 0, 0.8)

    def test_bernoulli_extremes(self):
        ps = PointSet([[0.0, 0.0], [0.8, 0.0]])
        assert BernoulliPolicy(1.0).decide(ps, 0, 1, 0.8)
        assert not BernoulliPolicy(0.0).decide(ps, 0, 1, 0.8)

    def test_bernoulli_rejects_bad_p(self):
        with pytest.raises(GraphError):
            BernoulliPolicy(1.5)

    def test_decay_keeps_near_alpha_drops_near_one(self):
        ps = PointSet([[0.0, 0.0], [0.55, 0.0], [0.999, 0.0]])
        policy = DecayPolicy(0.5, k=2.0, seed=0)
        keep_votes = sum(
            DecayPolicy(0.5, k=2.0, seed=s).decide(ps, 0, 1, 0.55)
            for s in range(30)
        )
        drop_votes = sum(
            DecayPolicy(0.5, k=2.0, seed=s).decide(ps, 0, 2, 0.999)
            for s in range(30)
        )
        assert keep_votes >= 22  # ~ (0.45/0.5)^2 = 0.81 keep probability
        assert drop_votes <= 2
        assert policy.decide(ps, 0, 1, 0.55) in (True, False)

    def test_decay_rejects_alpha_one(self):
        with pytest.raises(GraphError):
            DecayPolicy(1.0)

    def test_obstacle_blocks_crossing_link(self):
        ps = PointSet([[0.0, 0.0], [0.9, 0.0], [0.45, 0.4]])
        policy = ObstaclePolicy(obstacles=(((0.45, 0.0), 0.1),))
        g = build_qubg(ps, 0.3, policy=policy)
        assert not g.has_edge(0, 1)  # crosses the obstacle
        assert g.has_edge(0, 2) or ps.distance(0, 2) > 1.0

    def test_obstacle_never_blocks_short_links(self):
        ps = PointSet([[0.0, 0.0], [0.2, 0.0]])
        policy = ObstaclePolicy(obstacles=(((0.1, 0.0), 0.05),))
        g = build_qubg(ps, 0.3, policy=policy)
        assert g.has_edge(0, 1)  # d <= alpha: kept by definition

    def test_zero_distance_pair_rejected(self):
        ps = PointSet([[0.0, 0.0], [0.0, 0.0]])
        with pytest.raises(GraphError):
            build_udg(ps)
