"""Coordinate-free angle computations.

Section 1.1 of the paper stresses that the algorithm "does not need to know
the locations of nodes ... just the pairwise Euclidean distances".  The only
geometric predicate the algorithm uses is the covered-edge test
``angle(v, u, z) <= theta`` (Section 2.2.2), and the angle at a triangle
vertex is determined by the three side lengths via the law of cosines.
This module implements that computation, plus a coordinate-based reference
used in tests, plus Yao's cone-count bound used in the Theorem 11 degree
analysis.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import GraphError

__all__ = ["angle_from_sides", "angle_at_vertex", "yao_cone_count"]


def angle_from_sides(opposite: float, side_a: float, side_b: float) -> float:
    """Angle (radians) opposite to ``opposite`` in a triangle.

    Given a triangle with side lengths ``opposite``, ``side_a`` and
    ``side_b``, returns the angle between the sides ``side_a`` and
    ``side_b`` (i.e. the angle facing ``opposite``) using the law of
    cosines::

        cos(angle) = (side_a^2 + side_b^2 - opposite^2) / (2*side_a*side_b)

    The cosine is clamped to ``[-1, 1]`` so that distances that violate the
    triangle inequality by floating-point epsilon still produce an angle.

    Parameters
    ----------
    opposite, side_a, side_b:
        Triangle side lengths; ``side_a`` and ``side_b`` must be positive.

    Returns
    -------
    float
        Angle in radians, in ``[0, pi]``.
    """
    if side_a <= 0.0 or side_b <= 0.0:
        raise GraphError(
            f"adjacent sides must be positive; got {side_a}, {side_b}"
        )
    if opposite < 0.0:
        raise GraphError(f"opposite side must be >= 0; got {opposite}")
    cos_val = (side_a * side_a + side_b * side_b - opposite * opposite) / (
        2.0 * side_a * side_b
    )
    cos_val = max(-1.0, min(1.0, cos_val))
    return math.acos(cos_val)


def angle_at_vertex(
    apex: np.ndarray, p: np.ndarray, q: np.ndarray
) -> float:
    """Angle ``p-apex-q`` computed directly from coordinates.

    Reference implementation used by the test-suite to validate
    :func:`angle_from_sides`; production code paths use the coordinate-free
    version.
    """
    vec_p = np.asarray(p, dtype=np.float64) - np.asarray(apex, dtype=np.float64)
    vec_q = np.asarray(q, dtype=np.float64) - np.asarray(apex, dtype=np.float64)
    norm_p = float(np.linalg.norm(vec_p))
    norm_q = float(np.linalg.norm(vec_q))
    if norm_p == 0.0 or norm_q == 0.0:
        raise GraphError("angle undefined when a ray has zero length")
    cos_val = float(np.dot(vec_p, vec_q)) / (norm_p * norm_q)
    cos_val = max(-1.0, min(1.0, cos_val))
    return math.acos(cos_val)


def yao_cone_count(theta: float, dim: int) -> int:
    """Yao's bound on the number of ``theta``-cones covering the unit ball.

    Theorem 11's degree analysis partitions the unit ball around a vertex
    into ``T`` cones of half-angle ``theta`` such that any two points in a
    cone subtend an angle at most ``theta`` at the apex.  Yao [20] shows

        ``T = O(d^{3/2} * sin^{-d}(theta/2) * log(d * sin^{-1}(theta/2)))``.

    We return that expression rounded up; it is used only to report the
    theoretical degree constant alongside measured degrees, never to drive
    the algorithm.

    Parameters
    ----------
    theta:
        Cone half-angle in radians, ``0 < theta < pi``.
    dim:
        Euclidean dimension ``d >= 2``.
    """
    if not 0.0 < theta < math.pi:
        raise GraphError(f"theta must lie in (0, pi); got {theta}")
    if dim < 2:
        raise GraphError(f"dimension must be >= 2; got {dim}")
    inv_sin = 1.0 / math.sin(theta / 2.0)
    count = dim**1.5 * inv_sin**dim * max(1.0, math.log(dim * inv_sin))
    return math.ceil(count)
